package checkpoint

import (
	"errors"
	"fmt"

	"varsim/internal/core"
	"varsim/internal/journal"
	"varsim/internal/machine"
	"varsim/internal/rng"
	"varsim/internal/sampling"
)

// AdaptiveTimeSample is the stratified counterpart of
// core.Experiment.TimeSample: the checkpoints are strata of the
// workload's lifetime (§5.2), replication is scheduled adaptively on
// the equal-weight stratified estimator (sampling.StratifiedDecide /
// stats.StratifiedCI), and each round's runs branch from bases built
// through the BaseCache — so a stratum's warmup replays once and every
// further run is a near-free copy-on-write Snapshot branch instead of
// a full rerun.
//
// Per-stratum run identities match TimeSample exactly — label
// "<label>@<ck>", seed base rng.Derive(e.SeedBase, 0x100+ci), run
// seeds derived per index — so a journal written fixed-N replays into
// the adaptive schedule and vice versa. Barrier decisions are
// journaled under the synthetic label "<label>@strat" (round-indexed),
// and a -resume replays them. Target.MinRuns/MaxRuns apply per
// stratum; e.Runs per stratum is the fixed-N baseline the arm's
// runs-saved accounting uses.
func AdaptiveTimeSample(bc *BaseCache, e core.Experiment, checkpoints []int64, t sampling.Target) ([]core.Space, sampling.Arm, error) {
	t = t.Normalize()
	h := len(checkpoints)
	cfgHash := journal.ConfigHash(e.Config)
	arm := sampling.Arm{
		Experiment: e.Label, ConfigHash: cfgHash,
		FixedN: e.Runs * h, Status: sampling.StatusIncomplete,
	}
	if h == 0 {
		return nil, arm, errors.New("checkpoint: no checkpoints")
	}
	for i := 1; i < h; i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			return nil, arm, errors.New("checkpoint: checkpoints must be ascending")
		}
	}
	if err := e.Validate(); err != nil {
		return nil, arm, err
	}
	res := e.Resilience.ObserveOnce()
	spaces := make([]core.Space, h)
	rounds := make([]*core.Rounds, h)
	for ci, ck := range checkpoints {
		recipe := Recipe{
			Config: e.Config, Workload: e.Workload, WorkloadSeed: e.WorkloadSeed,
			PerturbSeed: rng.Derive(e.SeedBase, 0), WarmupTxns: ck,
		}
		label := fmt.Sprintf("%s@%d", e.Label, ck)
		spaces[ci] = core.Space{Label: label}
		rounds[ci] = &core.Rounds{
			Label: label, ConfigHash: cfgHash,
			SeedBase:    rng.Derive(e.SeedBase, 0x100+uint64(ci)),
			MeasureTxns: e.MeasureTxns, Workers: e.Workers, Res: res,
			Base: func() (*machine.Machine, error) { return bc.Build(recipe) },
		}
	}
	executed := func() int {
		n := 0
		for _, sp := range spaces {
			n += len(sp.Values)
		}
		return n
	}
	alloc := make([]int, h)
	for i := range alloc {
		alloc[i] = t.MinRuns // the pilot: every stratum earns a CI
	}
	for round := 0; ; round++ {
		ran := 0
		for ci := range rounds {
			k := alloc[ci]
			if k <= 0 {
				continue
			}
			results, missing, err := rounds[ci].Next(k)
			for _, r := range results {
				spaces[ci].Values = append(spaces[ci].Values, r.CPT)
				spaces[ci].Results = append(spaces[ci].Results, r)
			}
			if err != nil {
				spaces[ci].Missing = missing
				arm.Executed = executed()
				arm.Rounds = round
				return spaces, arm, err
			}
			ran += k
		}
		sampling.CountRound(ran)
		strata := make([][]float64, h)
		for ci := range spaces {
			strata[ci] = spaces[ci].Values
		}
		key := sampling.DecisionKey(e.Label+"@strat", cfgHash, e.SeedBase, round)
		d := core.BarrierDecision(res, key, func() sampling.Decision {
			return sampling.StratifiedDecide(strata, round, t)
		})
		arm.Rounds = round + 1
		arm.Executed = executed()
		arm.RelPct, arm.Needed = d.RelPct, d.Needed
		switch d.Action {
		case sampling.ActionContinue:
			if len(d.Alloc) == h {
				copy(alloc, d.Alloc)
			} else {
				// A journaled decision without a per-stratum split (or a
				// stratum-count mismatch) falls back to an even spread.
				for i := range alloc {
					alloc[i] = 0
				}
				for i := 0; i < d.Next; i++ {
					alloc[i%h]++
				}
			}
		case sampling.ActionStop:
			arm.Status = sampling.StatusConverged
			sampling.CountSettle(arm.FixedN-arm.Executed, false)
			return spaces, arm, nil
		default:
			arm.Status = sampling.StatusBudget
			sampling.CountSettle(arm.FixedN-arm.Executed, false)
			return spaces, arm, nil
		}
	}
}
