package checkpoint

import (
	"reflect"
	"sync"
	"testing"

	"varsim/internal/machine"
)

// drive runs a short measurement window and returns its Result — the
// observable a branch must agree on with a fresh replay.
func drive(t *testing.T, m *machine.Machine, seed uint64) machine.Result {
	t.Helper()
	m.SetPerturbSeed(seed)
	res, err := m.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBaseCacheAgreesWithReplay: a branch served from the cache must be
// indistinguishable from a machine rebuilt by full recipe replay.
func TestBaseCacheAgreesWithReplay(t *testing.T) {
	r := testRecipe()
	fresh, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := drive(t, fresh, 11)

	c := NewBaseCache()
	for i := 0; i < 3; i++ { // miss, then two hits
		m, err := c.Build(r)
		if err != nil {
			t.Fatal(err)
		}
		if got := drive(t, m, 11); !reflect.DeepEqual(got, want) {
			t.Fatalf("cache build %d diverged from fresh replay:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache rebuilt the same recipe %d times", c.Len())
	}
	r2 := r
	r2.WarmupTxns = 40
	if _, err := c.Build(r2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("distinct recipe did not get its own base (len %d)", c.Len())
	}
}

// TestBaseCacheConcurrent: concurrent Builds of one recipe replay it
// once and every caller's branch matches the sequential reference.
func TestBaseCacheConcurrent(t *testing.T) {
	r := testRecipe()
	fresh, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := drive(t, fresh, 5)

	c := NewBaseCache()
	const callers = 8
	got := make([]machine.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.Build(r)
			if err != nil {
				errs[i] = err
				return
			}
			m.SetPerturbSeed(5)
			got[i], errs[i] = m.Run(15)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("caller %d diverged from the sequential reference:\ngot  %+v\nwant %+v", i, got[i], want)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("concurrent Builds replayed the recipe %d times", c.Len())
	}
}

// TestBaseCacheBaseStaysFrozen: handing out branches must never mutate
// the cached base — two branches taken before and after heavy use of an
// intermediate branch run identically.
func TestBaseCacheBaseStaysFrozen(t *testing.T) {
	r := testRecipe()
	c := NewBaseCache()
	m1, err := c.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	want := drive(t, m1, 9)

	mid, err := c.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.Run(50); err != nil { // churn a branch hard
		t.Fatal(err)
	}
	m2, err := c.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := drive(t, m2, 9); !reflect.DeepEqual(got, want) {
		t.Fatalf("base mutated by an earlier branch:\ngot  %+v\nwant %+v", got, want)
	}
}
