package checkpoint

import (
	"sync"

	"varsim/internal/machine"
)

// BaseCache amortizes recipe replay across repeated Builds: the first
// Build of a recipe reconstructs the machine by deterministic replay
// (Recipe.Build), freezes it as a copy-on-write base, and every
// subsequent Build of the same recipe returns a cheap Snapshot branch
// of that base instead of replaying the warmup again. Because a
// machine is a pure function of its recipe and Snapshot branches are
// state-identical to their base, a branch is indistinguishable from a
// freshly replayed machine — the agreement test pins this.
//
// The zero value is not usable; call NewBaseCache. Safe for concurrent
// use: the lock is held across a rebuild so one goroutine replays a
// recipe while the rest wait and then branch, keeping every caller's
// machine identical regardless of arrival order. The cached bases stay
// frozen forever — handing out branches never mutates them — so cache
// hits perform no writes to shared simulation state (the determinism
// wall's requirement on the materialize path).
type BaseCache struct {
	mu    sync.Mutex
	bases map[Recipe]*machine.Machine
}

// NewBaseCache returns an empty cache.
func NewBaseCache() *BaseCache {
	return &BaseCache{bases: make(map[Recipe]*machine.Machine)}
}

// Build returns a machine in exactly the state r.Build() would
// produce, replaying the recipe only on the first call for each
// distinct recipe and branching the frozen base thereafter. The
// returned machine is private to the caller.
func (c *BaseCache) Build(r Recipe) (*machine.Machine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base, ok := c.bases[r]
	if !ok {
		m, err := r.Build()
		if err != nil {
			return nil, err
		}
		m.Freeze()
		c.bases[r] = m
		base = m
	}
	return base.Snapshot(), nil
}

// Len reports how many distinct recipes have been rebuilt into bases.
func (c *BaseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bases)
}
