// Package checkpoint persists simulation checkpoints to disk.
//
// A live checkpoint is a Machine.Snapshot (an in-memory deep copy). For
// durability the package exploits the simulator's strict determinism:
// a machine's state is a pure function of (configuration, workload name,
// workload seed, perturbation seed, transactions executed), so a
// checkpoint can be stored as that small *recipe* and rebuilt exactly by
// replay — the same idea as deterministic-replay checkpointing in real
// simulators, trading rebuild time for a few hundred bytes of storage.
//
// Recipes serialize as JSON, so they double as a readable record of an
// experiment's exact initial conditions.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"varsim/internal/config"
	"varsim/internal/core"
	"varsim/internal/machine"
	"varsim/internal/rng"
	"varsim/internal/workloads"
)

// Recipe identifies a machine state by construction.
type Recipe struct {
	Config       config.Config `json:"config"`
	Workload     string        `json:"workload"`
	WorkloadSeed uint64        `json:"workload_seed"`
	PerturbSeed  uint64        `json:"perturb_seed"`
	WarmupTxns   int64         `json:"warmup_txns"`
}

// FromExperiment captures the checkpoint an Experiment's Prepare step
// produces (same derived perturbation seed, same warmup), so the warmed
// state can be persisted and rebuilt elsewhere.
func FromExperiment(e core.Experiment) Recipe {
	return Recipe{
		Config:       e.Config,
		Workload:     e.Workload,
		WorkloadSeed: e.WorkloadSeed,
		PerturbSeed:  rng.Derive(e.SeedBase, 0),
		WarmupTxns:   e.WarmupTxns,
	}
}

// Validate checks the recipe.
func (r Recipe) Validate() error {
	if r.Workload == "" {
		return errors.New("checkpoint: empty workload name")
	}
	if r.WarmupTxns < 0 {
		return errors.New("checkpoint: negative warmup")
	}
	return r.Config.Validate()
}

// Build reconstructs the checkpointed machine by deterministic replay.
func (r Recipe) Build() (*machine.Machine, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	wl, err := workloads.New(r.Workload, r.Config, r.WorkloadSeed)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(r.Config, wl, r.PerturbSeed)
	if err != nil {
		return nil, err
	}
	if r.WarmupTxns > 0 {
		if _, err := m.Run(r.WarmupTxns); err != nil {
			return nil, fmt.Errorf("checkpoint: replay: %w", err)
		}
	}
	return m, nil
}

// Save writes the recipe as indented JSON.
func Save(w io.Writer, r Recipe) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a recipe written by Save.
func Load(rd io.Reader) (Recipe, error) {
	var r Recipe
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Recipe{}, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if err := r.Validate(); err != nil {
		return Recipe{}, err
	}
	return r, nil
}

// SaveFile writes the recipe to path.
func SaveFile(path string, r Recipe) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, r); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a recipe from path.
func LoadFile(path string) (Recipe, error) {
	f, err := os.Open(path)
	if err != nil {
		return Recipe{}, err
	}
	defer f.Close()
	return Load(f)
}
