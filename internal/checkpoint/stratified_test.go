package checkpoint

import (
	"bytes"
	"runtime"
	"testing"

	"varsim/internal/config"
	"varsim/internal/core"
	"varsim/internal/report"
	"varsim/internal/sampling"
)

// stratifiedExperiment is the AdaptiveTimeSample fixture; Runs is the
// per-stratum fixed-N baseline.
func stratifiedExperiment(workers int) core.Experiment {
	cfg := config.Default()
	cfg.NumCPUs = 4
	return core.Experiment{
		Label:        "strat-test",
		Config:       cfg,
		Workload:     "oltp",
		WorkloadSeed: 7,
		WarmupTxns:   20,
		MeasureTxns:  15,
		Runs:         8,
		SeedBase:     0xFEED,
		Workers:      workers,
	}
}

// TestAdaptiveTimeSampleRunIdentity pins the identity clause of the
// stratified contract: with the stopping rule pinned to exactly the
// fixed-N size (MinRuns = MaxRuns = Runs), AdaptiveTimeSample executes
// the same runs TimeSample would — same per-stratum labels, seed bases
// and run indices — so the two produce identical values per stratum.
func TestAdaptiveTimeSampleRunIdentity(t *testing.T) {
	e := stratifiedExperiment(1)
	e.Runs = 4
	cks := []int64{20, 40}
	fixed, err := e.TimeSample(cks)
	if err != nil {
		t.Fatal(err)
	}
	tgt := sampling.Target{MinRuns: e.Runs, MaxRuns: e.Runs, RoundSize: e.Runs}
	spaces, arm, err := AdaptiveTimeSample(NewBaseCache(), e, cks, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if arm.Executed != e.Runs*len(cks) {
		t.Fatalf("pinned schedule executed %d runs, want %d", arm.Executed, e.Runs*len(cks))
	}
	if len(spaces) != len(fixed) {
		t.Fatalf("stratum count: adaptive %d, fixed %d", len(spaces), len(fixed))
	}
	for ci := range spaces {
		if spaces[ci].Label != fixed[ci].Label {
			t.Errorf("stratum %d label: adaptive %q, fixed %q", ci, spaces[ci].Label, fixed[ci].Label)
		}
		if len(spaces[ci].Values) != len(fixed[ci].Values) {
			t.Fatalf("stratum %d: adaptive %d values, fixed %d", ci, len(spaces[ci].Values), len(fixed[ci].Values))
		}
		for i := range spaces[ci].Values {
			if spaces[ci].Values[i] != fixed[ci].Values[i] {
				t.Errorf("stratum %d run %d: adaptive %v != fixed %v — run identity drifted",
					ci, i, spaces[ci].Values[i], fixed[ci].Values[i])
			}
		}
	}
}

// TestAdaptiveTimeSampleWidthByteIdentical pins width independence for
// the stratified driver: a multi-round schedule (tiny relative-error
// target, small rounds) renders byte-identically at widths 1, 4 and
// NumCPU.
func TestAdaptiveTimeSampleWidthByteIdentical(t *testing.T) {
	tgt := sampling.Target{RelErr: 1e-6, MinRuns: 2, MaxRuns: 6, RoundSize: 2}
	cks := []int64{20, 40}
	render := func(width int) []byte {
		e := stratifiedExperiment(width)
		spaces, arm, err := AdaptiveTimeSample(NewBaseCache(), e, cks, tgt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, sp := range spaces {
			report.WriteSpace(&buf, sp)
		}
		rep := sampling.Report{Target: tgt.Normalize(), Arms: []sampling.Arm{arm}}
		rep.Finalize()
		report.WriteSampling(&buf, rep)
		return buf.Bytes()
	}
	want := render(1)
	if !bytes.Contains(want, []byte("budget")) {
		t.Fatalf("fixture drifted: 1e-6 target should settle at the budget\n%s", want)
	}
	for _, width := range []int{4, runtime.NumCPU()} {
		if got := render(width); !bytes.Equal(got, want) {
			t.Errorf("stratified schedule differs at width %d\n got:\n%s\nwant:\n%s", width, got, want)
		}
	}
}
