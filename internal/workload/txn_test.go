package workload

import (
	"testing"
	"testing/quick"
)

func testProfile() TxnProfile {
	return TxnProfile{
		Name:    "test",
		Threads: 8,
		Tables: []Table{
			{Name: "a", Rows: 1024, RowBytes: 128, Theta: 0.6},
			{Name: "b", Rows: 512, RowBytes: 64, Theta: 0.7},
		},
		Classes: []TxnClass{
			{Name: "rw", Weight: 70, Steps: 4, InstrPerStep: 100, Reads: 2, Writes: 1,
				Tables: []int{0, 1}, LockFamily: 0, LockedFrac: 0.5, LogRecords: 2,
				IOProb: 0.2, IOMeanNS: 5000},
			{Name: "ro", Weight: 30, Steps: 3, InstrPerStep: 80, Reads: 3, Writes: 0,
				Tables: []int{0}, LockFamily: -1},
		},
		LockFamilies:  []int{16},
		HasLog:        true,
		LogRecBytes:   64,
		FlushEvery:    8,
		FlushNS:       1000,
		LogLatch:      true,
		DataDisks:     2,
		PrivatePerOp:  1,
		BranchEvery:   6,
		BranchSites:   16,
		IndirectEvery: 9,
	}
}

func drainTxn(t *testing.T, e *TxnEngine, tid int) []Op {
	t.Helper()
	var ops []Op
	for i := 0; i < 100000; i++ {
		op := e.Next(tid)
		ops = append(ops, op)
		if op.Kind == OpTxnEnd {
			return ops
		}
	}
	t.Fatal("transaction never ended")
	return nil
}

func TestTxnStreamWellFormed(t *testing.T) {
	e := NewTxnEngine(testProfile(), 42)
	for txn := 0; txn < 50; txn++ {
		tid := txn % e.NumThreads()
		ops := drainTxn(t, e, tid)
		lockDepth := map[int32]int{}
		callDepth := 0
		for _, op := range ops {
			switch op.Kind {
			case OpLockAcq:
				lockDepth[op.ID]++
				if lockDepth[op.ID] > 1 {
					t.Fatalf("txn %d: recursive acquire of lock %d", txn, op.ID)
				}
				if op.Addr != LockWordAddr(op.ID) {
					t.Fatalf("lock word address mismatch for lock %d", op.ID)
				}
			case OpLockRel:
				lockDepth[op.ID]--
				if lockDepth[op.ID] < 0 {
					t.Fatalf("txn %d: release without acquire of lock %d", txn, op.ID)
				}
			case OpCall:
				callDepth++
			case OpRet:
				callDepth--
				if callDepth < 0 {
					t.Fatalf("txn %d: unbalanced returns", txn)
				}
			case OpIO:
				if op.N <= 0 {
					t.Fatalf("txn %d: non-positive IO duration", txn)
				}
			case OpCompute:
				if op.N <= 0 {
					t.Fatalf("txn %d: non-positive compute block", txn)
				}
			}
		}
		for id, d := range lockDepth {
			if d != 0 {
				t.Fatalf("txn %d: lock %d held at commit", txn, id)
			}
		}
		if callDepth != 0 {
			t.Fatalf("txn %d: unbalanced calls (%d)", txn, callDepth)
		}
	}
}

func TestNoLockNesting(t *testing.T) {
	// District lock and log latch must never nest (deadlock freedom):
	// the log latch is only acquired after all family locks are released.
	e := NewTxnEngine(testProfile(), 43)
	for txn := 0; txn < 80; txn++ {
		ops := drainTxn(t, e, txn%e.NumThreads())
		held := map[int32]bool{}
		for _, op := range ops {
			switch op.Kind {
			case OpLockAcq:
				if len(held) != 0 {
					t.Fatalf("txn %d: acquire of %d while holding %v", txn, op.ID, held)
				}
				held[op.ID] = true
			case OpLockRel:
				delete(held, op.ID)
			}
		}
	}
}

func TestFeedSharedAcrossThreads(t *testing.T) {
	e := NewTxnEngine(testProfile(), 44)
	drainTxn(t, e, 0)
	drainTxn(t, e, 3)
	drainTxn(t, e, 5)
	if e.FeedIndex() != 3 {
		t.Fatalf("feed index = %d after three txns, want 3", e.FeedIndex())
	}
}

func TestDeterministicStream(t *testing.T) {
	a := NewTxnEngine(testProfile(), 7)
	b := NewTxnEngine(testProfile(), 7)
	for i := 0; i < 5000; i++ {
		tid := i % a.NumThreads()
		if a.Next(tid) != b.Next(tid) {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := NewTxnEngine(testProfile(), 7)
	b := NewTxnEngine(testProfile(), 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next(0) == b.Next(0) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different workload seeds produced identical streams")
	}
}

func TestCloneContinuesIdentically(t *testing.T) {
	e := NewTxnEngine(testProfile(), 9)
	for i := 0; i < 137; i++ {
		e.Next(i % e.NumThreads())
	}
	c := e.Clone()
	for i := 0; i < 2000; i++ {
		tid := i % e.NumThreads()
		if e.Next(tid) != c.(*TxnEngine).Next(tid) {
			t.Fatalf("clone diverged at op %d", i)
		}
	}
}

func TestCloneIsolated(t *testing.T) {
	e := NewTxnEngine(testProfile(), 9)
	c := e.Clone().(*TxnEngine)
	for i := 0; i < 500; i++ {
		c.Next(0)
	}
	if e.FeedIndex() != 0 {
		t.Fatal("clone advanced original's feed")
	}
}

func TestAddressesInRegions(t *testing.T) {
	e := NewTxnEngine(testProfile(), 10)
	lo := TableBase
	var hi uint64
	for _, r := range e.tableRegions {
		if r.Base+r.Size > hi {
			hi = r.Base + r.Size
		}
	}
	for i := 0; i < 20000; i++ {
		op := e.Next(i % e.NumThreads())
		switch op.Kind {
		case OpLoad, OpStore:
			ok := (op.Addr >= lo && op.Addr < hi) || // tables
				(op.Addr >= LogBase && op.Addr < LogBase+LogSize) ||
				(op.Addr >= LockBase && op.Addr < StackBase) ||
				(op.Addr >= StackBase && op.Addr < TableBase)
			if !ok {
				t.Fatalf("address %#x outside known regions", op.Addr)
			}
		}
		if op.PC != 0 && (op.PC < CodeBase || op.PC >= CodeBase+CodeSize) {
			t.Fatalf("PC %#x outside code region", op.PC)
		}
	}
}

func TestPartitionConfinesThreads(t *testing.T) {
	prof := testProfile()
	prof.HasLog = false
	prof.Classes = []TxnClass{{
		Name: "p", Weight: 1, Steps: 3, InstrPerStep: 60, Reads: 2, Writes: 1,
		Tables: []int{0}, LockFamily: -1, Partition: true,
	}}
	e := NewTxnEngine(prof, 11)
	reg := e.tableRegions[0]
	rowsPer := prof.Tables[0].Rows / int64(prof.Threads)
	seen := map[int]map[int64]bool{}
	for i := 0; i < 30000; i++ {
		tid := i % e.NumThreads()
		op := e.Next(tid)
		if (op.Kind == OpLoad || op.Kind == OpStore) && reg.Contains(op.Addr) {
			off := op.Addr - reg.Base
			row := int64(off) / prof.Tables[0].RowBytes
			// Skip root/interior index touches (first 1024 blocks + root).
			if off < 64*1024+1024*64 {
				continue
			}
			if seen[tid] == nil {
				seen[tid] = map[int64]bool{}
			}
			seen[tid][row/rowsPer] = true
		}
	}
	for tid, parts := range seen {
		for p := range parts {
			if p != int64(tid) {
				t.Fatalf("thread %d touched partition %d", tid, p)
			}
		}
	}
}

func TestPhaseModelIntensity(t *testing.T) {
	p := PhaseModel{TrendAmp: 0.5, TrendScale: 1000}
	if p.Intensity(0) != 1.0 {
		t.Errorf("intensity(0) = %v, want 1", p.Intensity(0))
	}
	if p.Intensity(10000) < 1.45 {
		t.Errorf("trend should saturate near 1.5, got %v", p.Intensity(10000))
	}
	// Monotone for a pure positive trend.
	prev := 0.0
	for i := int64(0); i < 5000; i += 100 {
		v := p.Intensity(i)
		if v < prev {
			t.Fatalf("pure trend not monotone at %d", i)
		}
		prev = v
	}
	// Bursts multiply.
	pb := PhaseModel{BurstEvery: 100, BurstLen: 10, BurstMult: 2}
	if pb.Intensity(5) != 2 || pb.Intensity(50) != 1 {
		t.Errorf("burst windows wrong: %v %v", pb.Intensity(5), pb.Intensity(50))
	}
	// Negative trend floors at 0.05.
	pn := PhaseModel{TrendAmp: -5, TrendScale: 10}
	if pn.Intensity(1000) != 0.05 {
		t.Errorf("intensity floor broken: %v", pn.Intensity(1000))
	}
}

func TestPhaseModelCycle(t *testing.T) {
	p := PhaseModel{CycleAmp: 0.1, CyclePer: 100}
	if err := quick.Check(func(idx uint16) bool {
		v := p.Intensity(int64(idx))
		return v >= 0.9-1e-9 && v <= 1.1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := testProfile()
	bad.Threads = 0
	if bad.Validate() == nil {
		t.Error("zero threads accepted")
	}
	bad = testProfile()
	bad.Classes[0].LockFamily = 5
	if bad.Validate() == nil {
		t.Error("out-of-range lock family accepted")
	}
	bad = testProfile()
	bad.Classes[0].Tables = []int{9}
	if bad.Validate() == nil {
		t.Error("out-of-range table accepted")
	}
	bad = testProfile()
	bad.Classes = nil
	if bad.Validate() == nil {
		t.Error("empty class list accepted")
	}
	bad = testProfile()
	bad.Classes[0].Weight = 0
	if bad.Validate() == nil {
		t.Error("zero weight accepted")
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Base: 100, Size: 50}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Error("Contains wrong")
	}
	if r.At(0) != 100 || r.At(49) != 149 || r.At(50) != 100 {
		t.Error("At wrapping wrong")
	}
	if LockWordAddr(2) != LockBase+128 {
		t.Error("LockWordAddr wrong")
	}
	s0, s1 := StackRegion(0), StackRegion(1)
	if s0.Base+s0.Size != s1.Base {
		t.Error("stack regions must be adjacent and disjoint")
	}
}

func TestOpKindString(t *testing.T) {
	for k := OpCompute; k <= OpDone; k++ {
		if k.String() == "invalid" {
			t.Errorf("op kind %d unnamed", k)
		}
	}
	if OpKind(200).String() != "invalid" {
		t.Error("out-of-range kind should be invalid")
	}
}
