package workload

import (
	"fmt"

	"varsim/internal/rng"
)

// SciProfile configures the barrier-synchronized scientific workload
// engine that stands in for the SPLASH-2 codes (Barnes-Hut, Ocean).
// One thread runs per processor; the whole program counts as a single
// transaction (Table 3 of the paper lists #transactions = 1 for both).
type SciProfile struct {
	Name          string
	Threads       int
	Phases        int   // barrier-delimited phases (timesteps x sub-phases)
	InstrPerPhase int64 // compute per thread per phase
	// Private partition streamed each phase (Ocean-style grid sweep).
	PartitionBytes int64
	SweepStride    int64 // bytes between consecutive touches (64 = every block)
	// Shared structure read each phase (Barnes-style tree walk).
	SharedBytes  int64
	SharedReads  int
	SharedTheta  float64
	BoundaryRows int // neighbour-partition blocks read per phase (Ocean)
	WriteFrac    float64
	CodeBytes    int64
}

// Validate checks internal consistency.
func (p *SciProfile) Validate() error {
	if p.Threads <= 0 || p.Phases <= 0 {
		return fmt.Errorf("scientific workload %s: need threads and phases", p.Name)
	}
	if p.PartitionBytes < 0 || p.SharedBytes < 0 {
		return fmt.Errorf("scientific workload %s: negative region size", p.Name)
	}
	return nil
}

// sciThread is one worker thread's generator state.
type sciThread struct {
	rng    rng.Stream
	ops    []Op
	pos    int
	phase  int
	done   bool
	priv   Region
	shared bool // ops buffer aliased with a clone; reallocate before reuse
}

// SciEngine implements Instance for barrier-phase scientific programs.
type SciEngine struct {
	prof    SciProfile
	seed    uint64
	threads []sciThread
	shared  Region
	parts   []Region
	code    Region
	frozen  bool // all threads' ops buffers marked shared since last build
}

// NewSciEngine builds a scientific workload instance.
func NewSciEngine(prof SciProfile, seed uint64) *SciEngine {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	e := &SciEngine{prof: prof, seed: seed}
	base := TableBase
	e.shared = Region{Base: base, Size: uint64(max(prof.SharedBytes, 64))}
	base += e.shared.Size
	for i := 0; i < prof.Threads; i++ {
		sz := uint64(max(prof.PartitionBytes, 64))
		e.parts = append(e.parts, Region{Base: base, Size: sz})
		base += sz
	}
	cs := uint64(prof.CodeBytes)
	if cs == 0 {
		cs = 128 << 10
	}
	e.code = Region{Base: CodeBase, Size: cs}
	e.threads = make([]sciThread, prof.Threads)
	for i := range e.threads {
		e.threads[i] = sciThread{
			rng:  rng.New(rng.Derive(seed, 0x2000+uint64(i))),
			priv: StackRegion(i),
		}
	}
	return e
}

// Name implements Instance.
func (e *SciEngine) Name() string { return e.prof.Name }

// NumThreads implements Instance.
func (e *SciEngine) NumThreads() int { return e.prof.Threads }

// NumLocks implements Instance.
func (e *SciEngine) NumLocks() int { return 1 } // a global reduction lock

// NumSpinLocks implements Instance: the reduction lock is a spin latch.
func (e *SciEngine) NumSpinLocks() int { return 1 }

// NumBarriers implements Instance.
func (e *SciEngine) NumBarriers() int { return 1 }

// Next implements Instance.
func (e *SciEngine) Next(tid int) Op {
	t := &e.threads[tid]
	for t.pos >= len(t.ops) {
		if t.done {
			return Op{Kind: OpDone}
		}
		e.buildPhase(tid)
	}
	op := t.ops[t.pos]
	t.pos++
	return op
}

// Freeze marks every thread's op buffer as shared — see
// TxnEngine.Freeze and workload.Freezer.
func (e *SciEngine) Freeze() {
	if e.frozen {
		return
	}
	for i := range e.threads {
		e.threads[i].shared = true
	}
	e.frozen = true
}

// Materialize copies any thread op buffers still shared with another
// instance (see workload.Materializer).
func (e *SciEngine) Materialize() {
	for i := range e.threads {
		t := &e.threads[i]
		if t.shared {
			t.ops = append([]Op(nil), t.ops...)
			t.shared = false
		}
	}
	e.frozen = false
}

// Clone implements Instance. The per-thread op buffers are shared
// copy-on-write, as in TxnEngine.Clone.
func (e *SciEngine) Clone() Instance {
	e.Freeze()
	cp := *e
	cp.threads = append([]sciThread(nil), e.threads...)
	cp.parts = append([]Region(nil), e.parts...)
	return &cp
}

// buildPhase expands one barrier phase for thread tid.
func (e *SciEngine) buildPhase(tid int) {
	t := &e.threads[tid]
	if t.shared {
		// Aliased with a snapshot clone: drop, don't truncate in place.
		t.ops = nil
		t.shared = false
		e.frozen = false
	}
	t.ops = t.ops[:0]
	t.pos = 0
	p := e.prof

	if t.phase >= p.Phases {
		// Program end: thread 0 reports the single whole-program
		// "transaction"; everyone terminates.
		if tid == 0 {
			t.ops = append(t.ops, Op{Kind: OpTxnEnd, PC: e.code.At(0)})
		}
		t.ops = append(t.ops, Op{Kind: OpDone})
		t.done = true
		return
	}

	part := e.parts[tid]
	pc := uint64(t.phase%64) * 256
	emit := func(op Op) {
		op.PC = e.code.At(pc)
		t.ops = append(t.ops, op)
		pc += 4
	}

	// Compute interleaved with the sweep so misses spread through the
	// phase rather than bunching at its start.
	stride := p.SweepStride
	if stride < 64 {
		stride = 64
	}
	touches := int(int64(part.Size) / stride)
	if touches < 1 {
		touches = 1
	}
	instrPerTouch := p.InstrPerPhase / int64(touches)
	if instrPerTouch < 1 {
		instrPerTouch = 1
	}
	sharedEvery := 0
	if p.SharedReads > 0 {
		sharedEvery = max(touches/p.SharedReads, 1)
	}
	for i := 0; i < touches; i++ {
		addr := part.At(uint64(int64(i) * stride))
		emit(Op{Kind: OpLoad, Addr: addr})
		if t.rng.Bool(p.WriteFrac) {
			emit(Op{Kind: OpStore, Addr: addr})
		}
		if sharedEvery > 0 && i%sharedEvery == 0 {
			soff := uint64(t.rng.Zipf(int(e.shared.Size/64), p.SharedTheta)) * 64
			emit(Op{Kind: OpLoad, Addr: e.shared.At(soff)})
		}
		emit(Op{Kind: OpCompute, N: instrPerTouch})
		if i%4 == 3 {
			// Loop back-edges: highly predictable.
			site := uint32(0x4000 + i%128)
			emit(Op{Kind: OpBranch, Site: site, Taken: t.rng.Bool(0.97)})
		}
	}
	// Boundary exchange: read neighbours' edge blocks (Ocean-style
	// producer/consumer sharing).
	for bdry := 0; bdry < p.BoundaryRows; bdry++ {
		nb := e.parts[(tid+1)%p.Threads]
		emit(Op{Kind: OpLoad, Addr: nb.At(uint64(bdry) * 64)})
		pv := e.parts[(tid+p.Threads-1)%p.Threads]
		emit(Op{Kind: OpLoad, Addr: pv.At(pv.Size - 64 - uint64(bdry)*64)})
	}
	// Phase-end reduction under the global lock.
	emit(Op{Kind: OpLockAcq, ID: 0, Addr: LockWordAddr(0)})
	emit(Op{Kind: OpStore, Addr: e.shared.At(0)})
	emit(Op{Kind: OpLockRel, ID: 0, Addr: LockWordAddr(0)})
	emit(Op{Kind: OpBarrier, ID: 0})
	t.phase++
}
