package workload

// Fixed layout of the simulated 2 GB physical address space. All
// workloads share this layout; tables are allocated upward from
// TableBase by the engine.
const (
	// KernelBase is touched by the OS model on context switches (kernel
	// text/data working set shared by all processors).
	KernelBase uint64 = 0x0000_0000
	KernelSize uint64 = 4 << 20

	// CodeBase holds workload code; each transaction class gets a slice.
	CodeBase uint64 = 0x0100_0000
	CodeSize uint64 = 32 << 20

	// LogBase is the database log: a circular append-only region written
	// under the log lock — the serialization point of §2 footnote 1.
	LogBase uint64 = 0x0400_0000
	LogSize uint64 = 4 << 20

	// LockBase holds lock words, one 64-byte block per lock so lock
	// contention is pure coherence traffic, not false sharing.
	LockBase uint64 = 0x0800_0000

	// StackBase holds per-thread private memory (stack + heap slice).
	StackBase  uint64 = 0x1000_0000
	StackBytes uint64 = 256 << 10 // per thread

	// TableBase is where shared data regions (database tables, file
	// caches, object heaps) start.
	TableBase uint64 = 0x2000_0000
)

// LockWordAddr returns the address of lock id's word.
func LockWordAddr(id int32) uint64 {
	return LockBase + uint64(id)*64
}

// StackRegion returns thread tid's private region.
func StackRegion(tid int) Region {
	return Region{Base: StackBase + uint64(tid)*StackBytes, Size: StackBytes}
}
