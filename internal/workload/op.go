// Package workload defines the abstract multi-threaded workload model
// the simulator executes, and a configurable transactional workload
// engine that stands in for the paper's commercial benchmarks.
//
// A workload is a set of threads, each producing a deterministic stream
// of operations (compute blocks, loads/stores, lock acquire/release,
// blocking I/O, barriers, transaction boundaries). Crucially, *which*
// transaction a thread executes next comes from a shared feed claimed at
// run time, so the assignment of work to threads — and therefore cache
// affinity, lock order and scheduling — depends on execution timing.
// That dependency is what turns nanosecond-scale perturbations into the
// divergent execution paths the paper studies.
package workload

import "varsim/internal/digest"

// OpKind enumerates the operations a thread can issue.
type OpKind uint8

const (
	// OpCompute executes N instructions of pure computation.
	OpCompute OpKind = iota
	// OpLoad reads Addr through the data cache hierarchy.
	OpLoad
	// OpStore writes Addr (requires exclusive coherence permission).
	OpStore
	// OpLockAcq atomically acquires lock ID whose lock word is Addr.
	// Contended acquires spin briefly, then block in the OS.
	OpLockAcq
	// OpLockRel releases lock ID (writes Addr, wakes a waiter).
	OpLockRel
	// OpTxnEnd marks the completion of one transaction of class ID.
	OpTxnEnd
	// OpIO blocks the thread for N nanoseconds of service on disk ID.
	OpIO
	// OpBarrier blocks until all participants arrive at barrier ID.
	OpBarrier
	// OpBranch is a conditional branch at site Site with outcome Taken
	// (consumed by the out-of-order core's predictors; one instruction).
	OpBranch
	// OpCall pushes a return address (return-address-stack modelling).
	OpCall
	// OpRet pops a return address; Indirect mispredictions flush.
	OpRet
	// OpYield voluntarily releases the processor.
	OpYield
	// OpDone terminates the thread.
	OpDone
)

func (k OpKind) String() string {
	names := [...]string{
		"compute", "load", "store", "lock-acq", "lock-rel", "txn-end",
		"io", "barrier", "branch", "call", "ret", "yield", "done",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "invalid"
}

// Op is one operation in a thread's instruction stream. Ops are plain
// data so generator state (and buffered ops) can be deep-copied for
// machine snapshots.
type Op struct {
	Kind     OpKind
	N        int64  // instructions (compute) or nanoseconds (I/O)
	Addr     uint64 // memory/lock-word address
	ID       int32  // lock, barrier, disk, or transaction-class id
	Site     uint32 // branch site (predictor index)
	Taken    bool   // branch outcome
	Indirect bool   // indirect branch (cascaded predictor, not YAGS)
	PC       uint64 // code address, for instruction-fetch modelling
}

// Instance is a live, runnable workload: all thread generators plus any
// shared state (the transaction feed). Instances are single-threaded
// from the simulator's perspective — Next is only called inside event
// handlers — and must be deep-copyable via Clone for checkpoints.
type Instance interface {
	// Name identifies the workload ("oltp", "apache", ...).
	Name() string
	// NumThreads is the total number of user threads.
	NumThreads() int
	// NumLocks is how many OS-visible locks the workload uses.
	NumLocks() int
	// NumSpinLocks says how many of the first lock ids are spin latches:
	// waiters spin with backoff and never block in the OS (database
	// latches, e.g. on the log tail). The remaining locks are blocking
	// mutexes with FIFO handoff.
	NumSpinLocks() int
	// NumBarriers is how many barriers the workload uses.
	NumBarriers() int
	// Next produces the next operation for thread tid, advancing its
	// generator (and possibly shared state such as the transaction feed).
	// The stream is identical regardless of the processor model consuming
	// it (the simple core executes branch ops in one cycle), so the two
	// models see the same workload.
	Next(tid int) Op
	// Clone deep-copies the instance for machine snapshots.
	Clone() Instance
}

// Hasher is implemented by workload instances that can fold their
// progress state into an interval digest (internal/digest): shared-feed
// position, per-thread generator state, and buffered-op cursors.
// Optional — instances that don't implement it simply contribute
// nothing to the workload digest component beyond what the machine
// tracks itself.
type Hasher interface {
	// HashProgress folds the instance's progress state into h. It must
	// be read-only: digesting a workload must not advance it.
	HashProgress(h *digest.Hash)
}

// Freezer is implemented by instances whose Clone shares mutable
// buffers copy-on-write. Freeze relinquishes buffer ownership so a
// frozen instance can be Cloned from several goroutines at once (Clone
// on a frozen instance performs no writes); an instance that has run
// since its last Freeze must be re-frozen before concurrent cloning.
// Instances without Freeze are assumed to deep-copy in Clone, for
// which no freeze step is needed.
type Freezer interface {
	Freeze()
}

// Materializer is the eager endpoint of the copy-on-write pair:
// Materialize copies any buffers still shared with another instance,
// making this one a full deep copy.
type Materializer interface {
	Materialize()
}

// Region is a contiguous range of the simulated physical address space.
type Region struct {
	Base uint64
	Size uint64
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// At returns the address at offset off, wrapped into the region.
func (r Region) At(off uint64) uint64 {
	return r.Base + off%r.Size
}
