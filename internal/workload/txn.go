package workload

import (
	"fmt"

	"varsim/internal/rng"
)

// Table describes one shared data region (a database table, file cache,
// or object heap) accessed through an emulated index walk.
type Table struct {
	Name     string
	Rows     int64
	RowBytes int64
	Theta    float64 // Zipf skew of row popularity (0 = uniform-ish)
}

// TxnClass describes one transaction type of the mix (§3.1: the OLTP
// workload has five types; other workloads have their own mixes).
type TxnClass struct {
	Name         string
	Weight       int   // selection weight in the mix
	Steps        int   // work steps per transaction (mean)
	InstrPerStep int64 // compute instructions per step (mean)
	Reads        int   // row reads per step
	Writes       int   // row writes per step
	Tables       []int // indices into Profile.Tables this class touches
	LockFamily   int   // lock family acquired for the locked section; -1 = none
	LockedFrac   float64
	LogRecords   int     // log records appended at commit
	IOProb       float64 // probability of a blocking data-disk read
	IOMeanNS     int64
	CodeBytes    int64 // code footprint of this class
	// Partition confines row accesses to the executing thread's slice of
	// each table (SPECjbb-style per-warehouse data: no inter-thread
	// sharing, hence almost no space variability).
	Partition bool
}

// TxnProfile configures the transactional workload engine.
type TxnProfile struct {
	Name         string
	Threads      int
	Tables       []Table
	Classes      []TxnClass
	LockFamilies []int // family sizes; family i has LockFamilies[i] locks

	HasLog        bool
	LogRecBytes   int64
	FlushEvery    int64 // every FlushEvery commits, flush log to disk under the log lock
	FlushNS       int64
	GroupCommit   bool // hold the log lock across the flush (convoy source)
	LogLatch      bool // protect the log tail with a spin latch instead of a blocking mutex
	DataDisks     int
	ThinkNS       int64 // optional think time between transactions (0 for TPC-C-like, §3.1)
	PrivatePerOp  int   // private (stack) touches per step
	BranchEvery   int64 // one branch per this many compute instructions
	BranchSites   int   // distinct branch sites per class
	IndirectEvery int   // every n-th branch is indirect
	Phase         PhaseModel
}

// Validate checks internal consistency.
func (p *TxnProfile) Validate() error {
	if p.Threads <= 0 {
		return fmt.Errorf("workload %s: no threads", p.Name)
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("workload %s: no transaction classes", p.Name)
	}
	for _, c := range p.Classes {
		if c.LockFamily >= len(p.LockFamilies) {
			return fmt.Errorf("workload %s: class %s references lock family %d of %d", p.Name, c.Name, c.LockFamily, len(p.LockFamilies))
		}
		for _, t := range c.Tables {
			if t < 0 || t >= len(p.Tables) {
				return fmt.Errorf("workload %s: class %s references table %d", p.Name, c.Name, t)
			}
		}
		if c.Weight <= 0 || c.Steps <= 0 {
			return fmt.Errorf("workload %s: class %s needs positive weight and steps", p.Name, c.Name)
		}
	}
	return nil
}

// txnThread is one user thread's generator state.
type txnThread struct {
	rng    rng.Stream
	ops    []Op
	pos    int
	priv   Region
	poff   uint64 // rotating private offset
	shared bool   // ops buffer aliased with a clone; reallocate before reuse
}

// TxnEngine implements Instance for throughput-oriented transactional
// workloads. Transactions are defined by a shared feed: transaction idx
// has a fixed identity (class, rows, locks) derived from the workload
// seed, but which thread executes it — and hence on which processor and
// with which cache contents — is decided by execution timing.
type TxnEngine struct {
	prof    TxnProfile
	seed    uint64
	feed    int64
	logHead uint64
	threads []txnThread
	frozen  bool // all threads' ops buffers marked shared since last build

	tableRegions []Region
	codeRegions  []Region
	lockBase     []int32 // family -> first lock id (log lock is id 0)
	numLocks     int
	weightSum    int
}

// NewTxnEngine builds an engine from a profile. The profile must
// validate. seed fixes the workload's identity (its "database contents"
// and transaction feed): runs with the same seed start from the same
// initial conditions.
func NewTxnEngine(prof TxnProfile, seed uint64) *TxnEngine {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	e := &TxnEngine{prof: prof, seed: seed}
	// Lock id 0 is the log lock; families follow.
	next := int32(1)
	for _, size := range prof.LockFamilies {
		e.lockBase = append(e.lockBase, next)
		next += int32(size)
	}
	e.numLocks = int(next)
	// Allocate table regions upward from TableBase, block aligned.
	base := TableBase
	for _, t := range prof.Tables {
		size := uint64(t.Rows * t.RowBytes)
		size = (size + 63) &^ 63
		e.tableRegions = append(e.tableRegions, Region{Base: base, Size: size})
		base += size
	}
	// Code regions per class.
	cbase := CodeBase
	for _, c := range prof.Classes {
		sz := uint64(c.CodeBytes)
		if sz == 0 {
			sz = 64 << 10
		}
		e.codeRegions = append(e.codeRegions, Region{Base: cbase, Size: sz})
		cbase += sz
	}
	for _, c := range prof.Classes {
		e.weightSum += c.Weight
	}
	e.threads = make([]txnThread, prof.Threads)
	for i := range e.threads {
		e.threads[i] = txnThread{
			rng:  rng.New(rng.Derive(seed, 0x1000+uint64(i))),
			priv: StackRegion(i),
		}
	}
	return e
}

// Name implements Instance.
func (e *TxnEngine) Name() string { return e.prof.Name }

// NumThreads implements Instance.
func (e *TxnEngine) NumThreads() int { return e.prof.Threads }

// NumLocks implements Instance.
func (e *TxnEngine) NumLocks() int { return e.numLocks }

// NumSpinLocks implements Instance: the log lock (id 0) is a spin latch
// when the profile says so.
func (e *TxnEngine) NumSpinLocks() int {
	if e.prof.HasLog && e.prof.LogLatch {
		return 1
	}
	return 0
}

// NumBarriers implements Instance.
func (e *TxnEngine) NumBarriers() int { return 0 }

// FeedIndex returns how many transactions have been claimed from the
// shared feed (for tests).
func (e *TxnEngine) FeedIndex() int64 { return e.feed }

// Next implements Instance.
func (e *TxnEngine) Next(tid int) Op {
	t := &e.threads[tid]
	for t.pos >= len(t.ops) {
		e.buildTxn(tid)
	}
	op := t.ops[t.pos]
	t.pos++
	return op
}

// Freeze marks every thread's op buffer as shared, so both this engine
// and its future clones reallocate (rather than truncate-and-refill)
// the buffer at their next transaction build. Part of the copy-on-write
// snapshot protocol (see workload.Freezer).
func (e *TxnEngine) Freeze() {
	if e.frozen {
		return
	}
	for i := range e.threads {
		e.threads[i].shared = true
	}
	e.frozen = true
}

// Materialize copies any thread op buffers still shared with another
// instance (see workload.Materializer).
func (e *TxnEngine) Materialize() {
	for i := range e.threads {
		t := &e.threads[i]
		if t.shared {
			t.ops = append([]Op(nil), t.ops...)
			t.shared = false
		}
	}
	e.frozen = false
}

// Clone implements Instance. The per-thread op buffers are shared
// copy-on-write: each side reallocates its buffer the first time it
// builds a new transaction. Cloning freezes e if needed (a write); to
// clone concurrently, Freeze first — Clone on a frozen engine is
// read-only.
func (e *TxnEngine) Clone() Instance {
	e.Freeze()
	cp := *e
	cp.threads = append([]txnThread(nil), e.threads...)
	cp.tableRegions = append([]Region(nil), e.tableRegions...)
	cp.codeRegions = append([]Region(nil), e.codeRegions...)
	cp.lockBase = append([]int32(nil), e.lockBase...)
	return &cp
}

// builder bundles the state of one transaction's op-list construction.
type builder struct {
	e       *TxnEngine
	t       *txnThread
	tid     int
	r       rng.Stream
	class   int
	pc      uint64
	code    Region
	brCount int
	sites   uint32 // site id space base for this class
}

func (b *builder) emit(op Op) {
	op.PC = b.code.At(b.pc)
	b.t.ops = append(b.t.ops, op)
}

// compute emits n instructions of computation, interleaved with branch
// ops so both processor models consume the identical stream.
func (b *builder) compute(n int64) {
	if n <= 0 {
		return
	}
	every := b.e.prof.BranchEvery
	if every <= 0 {
		every = 8
	}
	for n > 0 {
		chunk := every
		if chunk > n {
			chunk = n
		}
		b.emit(Op{Kind: OpCompute, N: chunk})
		b.pc += uint64(chunk) * 4
		n -= chunk
		if n <= 0 {
			break
		}
		b.branch()
	}
}

// branch emits one conditional (or, periodically, indirect) branch with a
// per-site outcome bias: sites are mostly predictable, a few are noisy,
// matching the mix real predictors see.
func (b *builder) branch() {
	b.brCount++
	nsites := b.e.prof.BranchSites
	if nsites <= 0 {
		nsites = 64
	}
	site := b.sites + uint32(b.r.Intn(nsites))
	// Site-determined bias: most sites are strongly biased (loop
	// back-edges, error checks), a minority are data-dependent and noisy
	// — the mix real predictors face.
	h := rng.Derive(uint64(site), 0xb1a5)
	var bias float64
	if h%10 < 7 {
		bias = 0.96 + 0.035*float64(h%100)/100
	} else {
		bias = 0.60 + 0.25*float64(h%100)/100
	}
	taken := b.r.Bool(bias)
	ind := false
	ie := b.e.prof.IndirectEvery
	if ie > 0 && b.brCount%ie == 0 {
		ind = true
	}
	if ind {
		// Indirect target: per-site dominant target with occasional
		// alternates (virtual dispatch on a skewed type distribution).
		tsel := 0
		if b.r.Bool(0.25) {
			tsel = 1 + b.r.Intn(3)
		}
		b.emit(Op{Kind: OpBranch, Site: site, Taken: taken, Indirect: true,
			Addr: uint64(site)*64 + uint64(tsel)*8})
	} else {
		b.emit(Op{Kind: OpBranch, Site: site, Taken: taken})
	}
	b.pc += 4
}

// rowRead emits an emulated index walk to a row of table ti: a hot root
// touch, a warm interior touch, then the leaf row (one or two blocks).
func (b *builder) rowRead(ti int, write bool) {
	tab := b.e.prof.Tables[ti]
	reg := b.e.tableRegions[ti]
	var row int64
	if b.e.prof.Classes[b.class].Partition {
		per := tab.Rows / int64(b.e.prof.Threads)
		if per < 1 {
			per = 1
		}
		row = int64(b.tid)*per + int64(b.r.Zipf(int(per), tab.Theta))
	} else {
		row = int64(b.r.Zipf(int(tab.Rows), tab.Theta))
	}
	// Root: block 0 of the region; interior: one of the first 1024 blocks.
	b.emit(Op{Kind: OpLoad, Addr: reg.At(0)})
	inner := uint64(row) % 1024 * 64
	b.emit(Op{Kind: OpLoad, Addr: reg.At(64*1024 + inner)})
	leaf := uint64(row * tab.RowBytes)
	b.emit(Op{Kind: OpLoad, Addr: reg.At(leaf)})
	if write {
		b.emit(Op{Kind: OpStore, Addr: reg.At(leaf)})
		if tab.RowBytes > 64 {
			b.emit(Op{Kind: OpStore, Addr: reg.At(leaf + 64)})
		}
	} else if tab.RowBytes > 64 && b.r.Bool(0.5) {
		b.emit(Op{Kind: OpLoad, Addr: reg.At(leaf + 64)})
	}
}

// private emits a stack touch (L1-resident most of the time).
func (b *builder) private() {
	b.t.poff += 64
	addr := b.t.priv.At(b.t.poff)
	b.emit(Op{Kind: OpLoad, Addr: addr})
	b.emit(Op{Kind: OpStore, Addr: addr})
}

// buildTxn claims the next transaction from the shared feed and expands
// it into ops in the thread's buffer.
func (e *TxnEngine) buildTxn(tid int) {
	t := &e.threads[tid]
	if t.shared {
		// Buffer aliased with a snapshot clone: drop it instead of
		// truncating in place (the appends below would stomp the
		// clone's pending ops).
		t.ops = nil
		t.shared = false
		e.frozen = false
	}
	t.ops = t.ops[:0]
	t.pos = 0

	idx := e.feed
	e.feed++

	// The transaction's identity is a pure function of (seed, idx).
	r := rng.New(rng.Derive(e.seed, uint64(idx)))
	w := r.Intn(e.weightSum)
	ci := 0
	for acc := 0; ci < len(e.prof.Classes); ci++ {
		acc += e.prof.Classes[ci].Weight
		if w < acc {
			break
		}
	}
	if ci >= len(e.prof.Classes) {
		ci = len(e.prof.Classes) - 1
	}
	class := e.prof.Classes[ci]
	intensity := e.prof.Phase.Intensity(idx)

	b := builder{
		e: e, t: t, tid: tid, r: r, class: ci,
		code:  e.codeRegions[ci],
		pc:    uint64(r.Intn(1024)) * 64,
		sites: uint32(ci) << 16,
	}

	if e.prof.ThinkNS > 0 {
		b.emit(Op{Kind: OpIO, N: e.prof.ThinkNS, ID: -1})
	}

	steps := int(float64(class.Steps)*intensity + 0.5)
	if steps < 1 {
		steps = 1
	}
	instr := int64(float64(class.InstrPerStep) * intensity)
	if instr < 8 {
		instr = 8
	}

	// Begin: parse/plan.
	b.emit(Op{Kind: OpCall})
	b.compute(instr / 2)

	// Locked section boundaries.
	lockStart, lockEnd := -1, -1
	var lockID int32 = -1
	if class.LockFamily >= 0 {
		fam := class.LockFamily
		size := e.prof.LockFamilies[fam]
		lockID = e.lockBase[fam] + int32(r.Intn(size))
		span := int(float64(steps)*class.LockedFrac + 0.5)
		if span < 1 {
			span = 1
		}
		if span > steps {
			span = steps
		}
		lockStart = (steps - span) / 2
		lockEnd = lockStart + span
	}

	// Optional blocking data-disk read (buffer-pool miss).
	ioStep := -1
	if class.IOProb > 0 && r.Bool(class.IOProb) {
		ioStep = r.Intn(steps)
	}

	for s := 0; s < steps; s++ {
		b.emit(Op{Kind: OpCall}) // per-step helper function (RAS exercise)
		if s == lockStart {
			b.emit(Op{Kind: OpLockAcq, ID: lockID, Addr: LockWordAddr(lockID)})
		}
		// Interleave computation between row accesses: the resulting
		// inter-miss instruction gaps are what make reorder-buffer size
		// matter (Experiment 2) — a larger window overlaps more of the
		// next access's miss latency.
		accesses := class.Reads + class.Writes
		chunk := instr / int64(accesses+1)
		locked := lockID >= 0 && s >= lockStart && s < lockEnd
		b.compute(chunk)
		for i := 0; i < class.Reads; i++ {
			ti := class.Tables[r.Intn(len(class.Tables))]
			b.rowRead(ti, false)
			b.compute(chunk)
		}
		for i := 0; i < class.Writes; i++ {
			ti := class.Tables[r.Intn(len(class.Tables))]
			// Unlocked classes still write (engine-level latching is
			// below our model's granularity), but locked classes confine
			// writes to the critical section.
			if lockID < 0 || locked {
				b.rowRead(ti, true)
			} else {
				b.rowRead(ti, false)
			}
			b.compute(chunk)
		}
		for i := 0; i < e.prof.PrivatePerOp; i++ {
			b.private()
		}
		if s == ioStep && class.IOMeanNS > 0 {
			dur := int64(r.Exp(float64(class.IOMeanNS)))
			if dur < 1000 {
				dur = 1000
			}
			disk := 1 + r.Intn(max(e.prof.DataDisks, 1))
			b.emit(Op{Kind: OpIO, N: dur, ID: int32(disk)})
		}
		if s == lockEnd-1 && lockID >= 0 {
			b.emit(Op{Kind: OpLockRel, ID: lockID, Addr: LockWordAddr(lockID)})
		}
		b.emit(Op{Kind: OpRet})
	}

	// Commit: append log records under the global log lock.
	if e.prof.HasLog && class.LogRecords > 0 {
		b.emit(Op{Kind: OpLockAcq, ID: 0, Addr: LockWordAddr(0)})
		for i := 0; i < class.LogRecords; i++ {
			addr := LogBase + e.logHead%LogSize
			b.emit(Op{Kind: OpStore, Addr: addr})
			e.logHead += uint64(e.prof.LogRecBytes)
		}
		flush := e.prof.FlushEvery > 0 && idx%e.prof.FlushEvery == 0
		if flush && e.prof.GroupCommit {
			b.emit(Op{Kind: OpIO, N: e.prof.FlushNS, ID: 0}) // log disk, lock held
		}
		b.emit(Op{Kind: OpLockRel, ID: 0, Addr: LockWordAddr(0)})
		if flush && !e.prof.GroupCommit {
			b.emit(Op{Kind: OpIO, N: e.prof.FlushNS, ID: 0})
		}
	}
	b.compute(instr / 2)
	b.emit(Op{Kind: OpRet})
	b.emit(Op{Kind: OpTxnEnd, ID: int32(ci)})
}
