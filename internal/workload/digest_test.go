package workload

import (
	"testing"

	"varsim/internal/digest"
)

func progressDigest(h Hasher) uint64 {
	d := digest.New()
	h.HashProgress(&d)
	return d.Sum()
}

func TestTxnHashProgress(t *testing.T) {
	a := NewTxnEngine(testProfile(), 42)
	b := NewTxnEngine(testProfile(), 42)
	if progressDigest(a) != progressDigest(b) {
		t.Fatalf("identical fresh engines digest unequal")
	}
	// Digesting must not advance the engine.
	before := progressDigest(a)
	if progressDigest(a) != before {
		t.Fatalf("HashProgress not idempotent")
	}
	if a.Next(0) != b.Next(0) {
		t.Fatalf("digested engine produced a different op stream")
	}
	if progressDigest(a) != progressDigest(b) {
		t.Fatalf("lockstep engines digest unequal")
	}
	// Advancing a different thread forks the digest.
	a.Next(1)
	if progressDigest(a) == progressDigest(b) {
		t.Fatalf("thread progress invisible to digest")
	}
	b.Next(1)
	if progressDigest(a) != progressDigest(b) {
		t.Fatalf("reconverged engines digest unequal")
	}
}

func TestTxnHashProgressSeesFeedAssignment(t *testing.T) {
	// The shared feed is the paper's timing-dependent work assignment:
	// the same two transactions claimed by different threads must
	// digest differently even after both engines built two txns.
	a := NewTxnEngine(testProfile(), 42)
	b := NewTxnEngine(testProfile(), 42)
	a.Next(0)
	a.Next(1)
	b.Next(1)
	b.Next(0)
	if a.FeedIndex() != b.FeedIndex() {
		t.Fatalf("feed positions differ: %d vs %d", a.FeedIndex(), b.FeedIndex())
	}
	if progressDigest(a) == progressDigest(b) {
		t.Fatalf("txn-to-thread assignment invisible to digest")
	}
}

func TestSciHashProgress(t *testing.T) {
	prof := SciProfile{
		Name: "sci", Threads: 4, Phases: 3, InstrPerPhase: 100,
		PartitionBytes: 4096, SweepStride: 64, SharedBytes: 4096,
		SharedReads: 4, SharedTheta: 0.5, WriteFrac: 0.25,
	}
	a := NewSciEngine(prof, 7)
	b := NewSciEngine(prof, 7)
	if progressDigest(a) != progressDigest(b) {
		t.Fatalf("identical fresh sci engines digest unequal")
	}
	a.Next(2)
	if progressDigest(a) == progressDigest(b) {
		t.Fatalf("sci thread progress invisible to digest")
	}
	b.Next(2)
	if progressDigest(a) != progressDigest(b) {
		t.Fatalf("lockstep sci engines digest unequal")
	}
}

func TestEnginesImplementHasher(t *testing.T) {
	var _ Hasher = (*TxnEngine)(nil)
	var _ Hasher = (*SciEngine)(nil)
}
