package workload

import "varsim/internal/digest"

// HashProgress implements Hasher: the shared feed position and log
// head (the timing-dependent work assignment the engine exists to
// model), plus each thread's generator state and op-buffer cursor.
// Buffered ops are summarized by count rather than folded — their
// contents are a pure function of (rng state before the build, feed
// index), both of which are already digested.
func (e *TxnEngine) HashProgress(h *digest.Hash) {
	h.I64(e.feed)
	h.U64(e.logHead)
	for i := range e.threads {
		t := &e.threads[i]
		h.U64(t.rng.Digest())
		h.I64(int64(t.pos))
		h.I64(int64(len(t.ops)))
		h.U64(t.poff)
	}
}

// HashProgress implements Hasher: per-thread phase progress and
// generator state.
func (e *SciEngine) HashProgress(h *digest.Hash) {
	for i := range e.threads {
		t := &e.threads[i]
		h.U64(t.rng.Digest())
		h.I64(int64(t.pos))
		h.I64(int64(len(t.ops)))
		h.I64(int64(t.phase))
		h.Bool(t.done)
	}
}
