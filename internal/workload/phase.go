package workload

import "math"

// PhaseModel describes deterministic time variability: how the intrinsic
// cost of the workload changes over its lifetime (§2.1 "time
// variability", §4.3). The model composes three effects observed in the
// paper's workloads:
//
//   - a slow monotone trend (database working set growth for OLTP makes
//     transactions dearer over time; JIT warm-up for SPECjbb makes them
//     cheaper),
//   - a periodic component (transaction-mix oscillation, buffer-pool
//     cycling),
//   - recurring bursts (log flush storms, garbage-collection pauses).
type PhaseModel struct {
	TrendAmp   float64 // final multiplicative trend: cost -> cost*(1+TrendAmp) as idx >> TrendScale (negative = warm-up speedup)
	TrendScale float64 // transactions to reach ~63% of the trend
	CycleAmp   float64 // amplitude of the periodic component
	CyclePer   float64 // period in transactions
	BurstEvery int64   // a burst starts every BurstEvery transactions (0 = none)
	BurstLen   int64   // burst length in transactions
	BurstMult  float64 // cost multiplier during a burst
}

// Intensity returns the cost multiplier for transaction idx. It is a
// pure function: the phase behaviour is a property of the workload, not
// of any particular run.
func (p PhaseModel) Intensity(idx int64) float64 {
	m := 1.0
	if p.TrendAmp != 0 && p.TrendScale > 0 {
		x := float64(idx) / p.TrendScale
		m *= 1 + p.TrendAmp*(1-math.Exp(-x))
	}
	if p.CycleAmp != 0 && p.CyclePer > 0 {
		m *= 1 + p.CycleAmp*math.Sin(2*math.Pi*float64(idx)/p.CyclePer)
	}
	if p.BurstEvery > 0 && p.BurstLen > 0 {
		if idx%p.BurstEvery < p.BurstLen {
			m *= p.BurstMult
		}
	}
	if m < 0.05 {
		m = 0.05
	}
	return m
}
