package workload

import "testing"

func sciProfile() SciProfile {
	return SciProfile{
		Name:           "sci",
		Threads:        4,
		Phases:         3,
		InstrPerPhase:  1000,
		PartitionBytes: 4096,
		SweepStride:    64,
		SharedBytes:    8192,
		SharedReads:    8,
		SharedTheta:    0.5,
		BoundaryRows:   2,
		WriteFrac:      0.5,
	}
}

func TestSciPhaseStructure(t *testing.T) {
	e := NewSciEngine(sciProfile(), 1)
	if e.NumBarriers() != 1 || e.NumLocks() != 1 || e.NumSpinLocks() != 1 {
		t.Fatal("resource counts wrong")
	}
	barriers := make([]int, e.NumThreads())
	done := make([]bool, e.NumThreads())
	txnEnds := 0
	for running := true; running; {
		running = false
		for tid := 0; tid < e.NumThreads(); tid++ {
			if done[tid] {
				continue
			}
			running = true
			op := e.Next(tid)
			switch op.Kind {
			case OpBarrier:
				barriers[tid]++
			case OpTxnEnd:
				txnEnds++
			case OpDone:
				done[tid] = true
			}
		}
	}
	for tid, b := range barriers {
		if b != 3 {
			t.Errorf("thread %d passed %d barriers, want 3", tid, b)
		}
	}
	if txnEnds != 1 {
		t.Errorf("scientific program reported %d transactions, want exactly 1", txnEnds)
	}
}

func TestSciDoneIsSticky(t *testing.T) {
	e := NewSciEngine(sciProfile(), 2)
	for i := 0; i < 100000; i++ {
		if e.Next(1).Kind == OpDone {
			break
		}
	}
	for i := 0; i < 10; i++ {
		if e.Next(1).Kind != OpDone {
			t.Fatal("finished thread produced non-Done op")
		}
	}
}

func TestSciPartitionsDisjoint(t *testing.T) {
	e := NewSciEngine(sciProfile(), 3)
	for i := 0; i < len(e.parts); i++ {
		for j := i + 1; j < len(e.parts); j++ {
			a, b := e.parts[i], e.parts[j]
			if a.Base < b.Base+b.Size && b.Base < a.Base+a.Size {
				t.Fatalf("partitions %d and %d overlap", i, j)
			}
		}
	}
}

func TestSciBoundarySharing(t *testing.T) {
	e := NewSciEngine(sciProfile(), 4)
	// Thread 1 must read from its neighbours' partitions at least once.
	other := 0
	own := e.parts[1]
	for i := 0; i < 10000; i++ {
		op := e.Next(1)
		if op.Kind == OpDone {
			break
		}
		if op.Kind == OpLoad && !own.Contains(op.Addr) && !e.shared.Contains(op.Addr) {
			other++
		}
	}
	if other == 0 {
		t.Fatal("no boundary reads from neighbour partitions")
	}
}

func TestSciCloneContinues(t *testing.T) {
	e := NewSciEngine(sciProfile(), 5)
	for i := 0; i < 57; i++ {
		e.Next(i % 4)
	}
	c := e.Clone().(*SciEngine)
	for i := 0; i < 500; i++ {
		tid := i % 4
		if e.Next(tid) != c.Next(tid) {
			t.Fatalf("clone diverged at %d", i)
		}
	}
}

func TestSciValidation(t *testing.T) {
	p := sciProfile()
	p.Threads = 0
	if p.Validate() == nil {
		t.Error("zero threads accepted")
	}
	p = sciProfile()
	p.PartitionBytes = -1
	if p.Validate() == nil {
		t.Error("negative partition accepted")
	}
}
