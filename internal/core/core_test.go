package core

import (
	"math"
	"testing"

	"varsim/internal/config"
	"varsim/internal/stats"
)

func TestWCRKnownCases(t *testing.T) {
	// Disjoint samples: no pair contradicts the means.
	a := []float64{10, 11, 12}
	b := []float64{1, 2, 3}
	if got := WCR(a, b); got != 0 {
		t.Errorf("disjoint WCR = %v, want 0", got)
	}
	// Fully interleaved with equal means: mean diff zero -> 0 by definition.
	if got := WCR([]float64{1, 3}, []float64{1, 3}); got != 0 {
		t.Errorf("equal-mean WCR = %v, want 0", got)
	}
	// One contradicting pair out of four: a mean 10 > b mean 5.5, but
	// a=9 vs b=10 flips.
	got := WCR([]float64{9, 11}, []float64{1, 10})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("WCR = %v, want 0.25", got)
	}
	if WCR(nil, b) != 0 || WCR(a, nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestWCRSymmetry(t *testing.T) {
	a := []float64{5, 6, 7, 8}
	b := []float64{6.5, 7.5, 5.5, 9}
	if WCR(a, b) != WCR(b, a) {
		t.Error("WCR must be symmetric")
	}
}

func TestCompareOrdersByMean(t *testing.T) {
	fast := Space{Label: "fast", Values: []float64{10, 10.2, 9.8, 10.1}}
	slow := Space{Label: "slow", Values: []float64{12, 12.2, 11.8, 12.1}}
	for _, pair := range [][2]Space{{fast, slow}, {slow, fast}} {
		c, err := Compare(pair[0], pair[1], 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if c.Slower.Label != "slow" || c.Faster.Label != "fast" {
			t.Fatalf("ordering wrong: slower=%s faster=%s", c.Slower.Label, c.Faster.Label)
		}
		if c.MeanDiffPct < 19 || c.MeanDiffPct > 21 {
			t.Errorf("mean diff %.2f%%, want ~20%%", c.MeanDiffPct)
		}
		if !c.TTest.Reject(0.01) {
			t.Error("clear difference should reject H0")
		}
		if c.CIsOverlap {
			t.Error("disjoint spaces' CIs should not overlap")
		}
		if c.WCRPct != 0 {
			t.Errorf("disjoint spaces WCR = %v, want 0", c.WCRPct)
		}
	}
}

func TestCompareOverlapping(t *testing.T) {
	a := Space{Label: "a", Values: []float64{10, 12, 11, 13, 10.5, 11.5}}
	b := Space{Label: "b", Values: []float64{10.2, 12.2, 11.2, 13.2, 10.7, 11.7}}
	c, err := Compare(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if c.WCRPct <= 0 {
		t.Error("overlapping spaces should have positive WCR")
	}
	if !c.CIsOverlap {
		t.Error("near-identical spaces' CIs should overlap")
	}
	if c.TTest.Reject(0.05) {
		t.Error("tiny difference should not be significant at 6 runs")
	}
	if got := c.Conclusion(0.05); got == "" {
		t.Error("empty conclusion")
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Space{Values: []float64{1}}, Space{Values: []float64{1, 2}}, 0.95); err == nil {
		t.Error("expected error for tiny samples")
	}
}

func TestExperimentValidate(t *testing.T) {
	e := Experiment{Config: config.Default(), Workload: "oltp", MeasureTxns: 10, Runs: 2}
	if err := e.Validate(); err != nil {
		t.Fatalf("valid experiment rejected: %v", err)
	}
	bad := e
	bad.Runs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero runs accepted")
	}
	bad = e
	bad.MeasureTxns = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero measurement accepted")
	}
	bad = e
	bad.WarmupTxns = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
}

func smallExperiment() Experiment {
	cfg := config.Default()
	cfg.NumCPUs = 4
	return Experiment{
		Label:        "test",
		Config:       cfg,
		Workload:     "oltp",
		WorkloadSeed: 7,
		WarmupTxns:   20,
		MeasureTxns:  20,
		Runs:         5,
		SeedBase:     1,
	}
}

func TestRunSpaceProducesVariability(t *testing.T) {
	sp, err := smallExperiment().RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Values) != 5 {
		t.Fatalf("got %d runs", len(sp.Values))
	}
	s := sp.Summary()
	if !(s.Min < s.Max) {
		t.Fatalf("no spread across perturbed runs: %+v", s)
	}
	if s.CoV <= 0 || s.CoV > 50 {
		t.Fatalf("implausible CoV %.2f%%", s.CoV)
	}
	for _, r := range sp.Results {
		if r.Txns < 20 {
			t.Fatalf("run completed %d txns", r.Txns)
		}
	}
}

func TestRunSpaceReproducible(t *testing.T) {
	a, err := smallExperiment().RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallExperiment().RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("experiment not reproducible at run %d: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
}

func TestTimeSampleAndANOVA(t *testing.T) {
	// Checkpoints are taken past the cold-start region so the workload's
	// lifetime trend (database growth) dominates cache warmup.
	e := smallExperiment()
	e.Runs = 4
	spaces, err := e.TimeSample([]int64{1600, 3700, 5800})
	if err != nil {
		t.Fatal(err)
	}
	if len(spaces) != 3 {
		t.Fatalf("got %d spaces", len(spaces))
	}
	res, err := ANOVAOverCheckpoints(spaces)
	if err != nil {
		t.Fatal(err)
	}
	if res.F < 0 || math.IsNaN(res.P) {
		t.Fatalf("bad ANOVA %+v", res)
	}
	// Between-checkpoint (time) variability must dominate within-
	// checkpoint (space) variability for OLTP — the paper's §5.2 ANOVA
	// finding.
	if !res.Significant(0.05) {
		t.Errorf("time variability should be ANOVA-significant: %+v", res)
	}
}

func TestSPECjbbJITWarmupTrend(t *testing.T) {
	// SPECjbb's dominant lifetime effect is JIT warm-up: later
	// checkpoints run faster (Figure 9b: >36% between checkpoints).
	e := smallExperiment()
	e.Workload = "specjbb"
	e.Runs = 3
	e.MeasureTxns = 60
	spaces, err := e.TimeSample([]int64{400, 5800})
	if err != nil {
		t.Fatal(err)
	}
	m0 := stats.Mean(spaces[0].Values)
	m1 := stats.Mean(spaces[1].Values)
	if m1 >= m0 {
		t.Errorf("expected falling CPT from JIT warm-up, got %v -> %v", m0, m1)
	}
}

func TestTimeSampleErrors(t *testing.T) {
	e := smallExperiment()
	if _, err := e.TimeSample(nil); err == nil {
		t.Error("no checkpoints accepted")
	}
	if _, err := e.TimeSample([]int64{30, 20}); err == nil {
		t.Error("descending checkpoints accepted")
	}
}

func TestPlanRuns(t *testing.T) {
	a := Space{Values: []float64{100, 102, 98, 101, 99, 103, 97, 100}}
	b := Space{Values: []float64{95, 97, 93, 96, 94, 98, 92, 95}}
	p := PlanRuns(a, b, 0.01, 0.05)
	if p.ByRelativeError <= 0 || p.ByHypothesis <= 0 {
		t.Fatalf("plan has non-positive run counts: %+v", p)
	}
	// Larger tolerated error -> fewer runs.
	p2 := PlanRuns(a, b, 0.05, 0.05)
	if p2.ByRelativeError > p.ByRelativeError {
		t.Error("looser tolerance should need fewer runs")
	}
}

func TestPrepareUnknownWorkload(t *testing.T) {
	e := smallExperiment()
	e.Workload = "nosuch"
	if _, err := e.Prepare(); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCheckpointSamplers(t *testing.T) {
	sys := SystematicCheckpoints(4, 8000)
	want := []int64{2000, 4000, 6000, 8000}
	for i := range want {
		if sys[i] != want[i] {
			t.Fatalf("systematic = %v", sys)
		}
	}
	rnd := RandomCheckpoints(6, 8000, 1)
	if len(rnd) != 6 {
		t.Fatalf("random returned %d checkpoints", len(rnd))
	}
	for i, ck := range rnd {
		if ck < 1 || ck > 8000 {
			t.Fatalf("checkpoint %d out of range: %d", i, ck)
		}
		if i > 0 && rnd[i] <= rnd[i-1] {
			t.Fatalf("random checkpoints not strictly ascending: %v", rnd)
		}
	}
	// Deterministic in seed; different across seeds.
	again := RandomCheckpoints(6, 8000, 1)
	for i := range rnd {
		if rnd[i] != again[i] {
			t.Fatal("random checkpoints not reproducible")
		}
	}
	other := RandomCheckpoints(6, 8000, 2)
	same := true
	for i := range rnd {
		if rnd[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical checkpoints")
	}
	if SystematicCheckpoints(0, 100) != nil || RandomCheckpoints(0, 100, 1) != nil {
		t.Fatal("degenerate inputs should give nil")
	}
}

func TestMESIExperimentRuns(t *testing.T) {
	e := smallExperiment()
	e.Config.CoherenceMESI = true
	sp, err := e.RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Values) != e.Runs {
		t.Fatalf("MESI experiment produced %d runs", len(sp.Values))
	}
}
