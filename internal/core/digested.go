package core

import (
	"encoding/json"
	"errors"
	"math"

	"varsim/internal/digest"
	"varsim/internal/fleet"
	"varsim/internal/journal"
	"varsim/internal/machine"
	"varsim/internal/rng"
)

// SpaceDigests bundles the interval digest streams of a space's runs,
// index-aligned with the space: Series[i] belongs to run i. Runs a
// graceful drain left unexecuted hold an empty stream — unlike
// Space.Values, the slice is not compacted, so alignment survives a
// partial space.
type SpaceDigests struct {
	IntervalNS int64
	Series     []digest.Series
}

// Diff binary-searches runs a and b's digest streams for their first
// divergent interval.
func (d SpaceDigests) Diff(a, b int) digest.Divergence {
	return digest.Diff(d.Series[a], d.Series[b])
}

// Attribution aggregates the space's first-divergence points against
// run 0 (see digest.Attribute), pairing each run's digest stream with
// its final CPT. Drained runs contribute neither streams nor values:
// their aligned value slot is NaN, which Attribute ignores.
func (d SpaceDigests) Attribution(sp Space) digest.Attribution {
	values := sp.Values
	if sp.Incomplete() {
		values = alignValues(sp, len(d.Series))
	}
	return digest.Attribute(d.Series, values)
}

// alignValues re-expands a drained space's compacted Values back to
// run-index alignment, NaN at the missing indices.
func alignValues(sp Space, n int) []float64 {
	miss := make(map[int]bool, len(sp.Missing))
	for _, i := range sp.Missing {
		miss[i] = true
	}
	values := make([]float64, n)
	next := 0
	for i := range values {
		if miss[i] || next >= len(sp.Values) {
			values[i] = math.NaN()
			continue
		}
		values[i] = sp.Values[next]
		next++
	}
	return values
}

// runDigested is the fleet job payload when digests ride along.
type runDigested struct {
	Res machine.Result
	Dig digest.Series
}

// BranchSpaceDigests is BranchSpaceRes with interval state digesting
// enabled on every branched run: each run records a digest sample per
// intervalNS of simulated time alongside its measurement. Seeds derive
// exactly as in BranchSpace, so run i here reproduces run i there; the
// fleet's index-ordered merge keeps both the space and the digest
// streams byte-identical for every worker count.
//
// With a journal attached, each settled run appends its usual run
// record plus a StatusDigest record under the same key; on resume a
// run replays from the cache only when both records are present, so a
// digest-less journal from an older run transparently re-simulates.
func BranchSpaceDigests(checkpoint *machine.Machine, label string, n int, measureTxns int64, seedBase uint64, workers int, intervalNS int64, res Resilience) (Space, SpaceDigests, error) {
	sp := Space{Label: label}
	sd := SpaceDigests{IntervalNS: intervalNS}
	if n <= 0 {
		return sp, sd, nil
	}
	if intervalNS <= 0 {
		sp, err := BranchSpaceRes(checkpoint, label, n, measureTxns, seedBase, workers, res)
		return sp, sd, err
	}
	cfgHash := journal.ConfigHash(checkpoint.Config())
	opts := fleet.Options[runDigested]{
		Workers:  fleet.Width(workers),
		Timeout:  res.JobTimeout,
		Retries:  res.Retries,
		Stop:     res.Stop,
		TestHook: res.TestHook,
		Labels:   []string{"experiment", label, "config", cfgHash},
	}
	if res.Cache != nil {
		opts.Cached = func(i int) (runDigested, bool) {
			key := branchKey(label, cfgHash, seedBase, i)
			rec, ok := res.Cache.Get(key)
			if !ok {
				return runDigested{}, false
			}
			drec, ok := res.Cache.Digest(key)
			if !ok {
				return runDigested{}, false // no digest journaled: re-run
			}
			var rd runDigested
			if err := json.Unmarshal(rec.Result, &rd.Res); err != nil {
				return runDigested{}, false
			}
			var err error
			if rd.Dig, err = journal.DecodeDigest(drec); err != nil {
				return runDigested{}, false
			}
			if rd.Dig.IntervalNS != intervalNS {
				return runDigested{}, false // cadence changed: re-run
			}
			// Cache hits bypass OnResult; replays feed the precision
			// observer here, like BranchSpaceRes.
			if res.Observe != nil {
				res.Observe(key, rd.Res)
			}
			return rd, true
		}
	}
	if res.Journal != nil || res.Observe != nil {
		opts.OnResult = func(i, attempts int, v runDigested, err error) {
			key := branchKey(label, cfgHash, seedBase, i)
			if err == nil && res.Observe != nil {
				res.Observe(key, v.Res)
			}
			if res.Journal == nil {
				return
			}
			// Append errors are sticky on the writer; the CLIs check
			// Writer.Err() at teardown rather than failing runs here.
			rec := journal.Record{Key: key, Attempts: attempts}
			if err != nil {
				rec.Status = journal.StatusFailed
				rec.Error = err.Error()
				//varsim:allow stickyerr fire-and-forget by design: Writer.Err is checked at CLI teardown
				res.Journal.Append(rec)
				return
			}
			raw, merr := json.Marshal(v.Res)
			if merr != nil {
				rec.Status = journal.StatusFailed
				rec.Error = "core: unencodable result: " + merr.Error()
				//varsim:allow stickyerr fire-and-forget by design: Writer.Err is checked at CLI teardown
				res.Journal.Append(rec)
				return
			}
			rec.Status = journal.StatusOK
			rec.Result = raw
			//varsim:allow stickyerr fire-and-forget by design: Writer.Err is checked at CLI teardown
			res.Journal.Append(rec)
			if drec, derr := journal.DigestRecord(key, v.Dig); derr == nil {
				//varsim:allow stickyerr fire-and-forget by design: Writer.Err is checked at CLI teardown
				res.Journal.Append(drec)
			}
		}
	}
	// Freeze before the fleet starts: fleet jobs snapshot the checkpoint
	// concurrently, and Snapshot on a frozen machine performs no writes.
	checkpoint.Freeze()
	branches, err := fleet.Run(opts, n, func(i int) (runDigested, error) {
		m := checkpoint.Snapshot()
		m.SetPerturbSeed(rng.Derive(seedBase, 1+uint64(i)))
		m.EnableDigests(intervalNS)
		r, err := m.Run(measureTxns)
		if err != nil {
			return runDigested{}, err
		}
		return runDigested{Res: r, Dig: m.DigestSeries()}, nil
	})
	if err != nil {
		var inc *fleet.Incomplete
		if errors.As(err, &inc) {
			miss := make(map[int]bool, len(inc.Missing))
			for _, i := range inc.Missing {
				miss[i] = true
			}
			sd.Series = make([]digest.Series, n)
			for i, b := range branches {
				if !miss[i] {
					sp.Values = append(sp.Values, b.Res.CPT)
					sp.Results = append(sp.Results, b.Res)
					sd.Series[i] = b.Dig
				}
			}
			sp.Missing = inc.Missing
			return sp, sd, err
		}
		return Space{}, SpaceDigests{}, runError(err)
	}
	sp.Values = make([]float64, n)
	sp.Results = make([]machine.Result, n)
	sd.Series = make([]digest.Series, n)
	for i, b := range branches {
		sp.Values[i] = b.Res.CPT
		sp.Results[i] = b.Res
		sd.Series[i] = b.Dig
	}
	return sp, sd, nil
}

// CachedSpaceDigests replays the full space and every run's digest
// stream from the resume cache. Returns false on any missing or
// undecodable record (run or digest), or on a cadence mismatch — the
// caller then takes the normal prepare-and-run path.
func (e Experiment) CachedSpaceDigests() (Space, SpaceDigests, bool) {
	if e.Resilience.Cache == nil || e.Runs <= 0 || e.DigestIntervalNS <= 0 || e.Validate() != nil {
		return Space{}, SpaceDigests{}, false
	}
	cfgHash := journal.ConfigHash(e.Config)
	sp := Space{
		Label:   e.Label,
		Values:  make([]float64, e.Runs),
		Results: make([]machine.Result, e.Runs),
	}
	sd := SpaceDigests{
		IntervalNS: e.DigestIntervalNS,
		Series:     make([]digest.Series, e.Runs),
	}
	for i := 0; i < e.Runs; i++ {
		key := branchKey(e.Label, cfgHash, e.SeedBase, i)
		rec, ok := e.Resilience.Cache.Get(key)
		if !ok {
			return Space{}, SpaceDigests{}, false
		}
		if err := json.Unmarshal(rec.Result, &sp.Results[i]); err != nil {
			return Space{}, SpaceDigests{}, false
		}
		sp.Values[i] = sp.Results[i].CPT
		drec, ok := e.Resilience.Cache.Digest(key)
		if !ok {
			return Space{}, SpaceDigests{}, false
		}
		s, err := journal.DecodeDigest(drec)
		if err != nil || s.IntervalNS != e.DigestIntervalNS {
			return Space{}, SpaceDigests{}, false
		}
		sd.Series[i] = s
	}
	// Whole-space replays bypass the fleet; feed the precision observer
	// in run-index order once every record has decoded (as CachedSpace).
	if e.Resilience.Observe != nil {
		for i := range sp.Results {
			e.Resilience.Observe(branchKey(e.Label, cfgHash, e.SeedBase, i), sp.Results[i])
		}
	}
	return sp, sd, true
}

// RunSpaceDigests is RunSpace with digesting at the experiment's
// DigestIntervalNS cadence: warm up once, snapshot, branch Runs
// perturbed futures, each recording its digest stream. A fully
// journaled experiment replays space and digests without re-simulating
// — the warmup itself is skipped.
func (e Experiment) RunSpaceDigests() (Space, SpaceDigests, error) {
	if sp, sd, ok := e.CachedSpaceDigests(); ok {
		return sp, sd, nil
	}
	base, err := e.Prepare()
	if err != nil {
		return Space{}, SpaceDigests{}, err
	}
	return BranchSpaceDigests(base, e.Label, e.Runs, e.MeasureTxns, e.SeedBase, e.Workers, e.DigestIntervalNS, e.Resilience)
}
