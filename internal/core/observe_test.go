// Observe-hook tests: the precision observatory's feed point
// (Resilience.Observe) must see every successful run exactly once —
// live from the fleet, per-run from the resume cache, and from the
// whole-space CachedSpace replay — without perturbing results.
package core_test

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"varsim/internal/core"
	"varsim/internal/journal"
	"varsim/internal/machine"
)

// observeLog is a minimal concurrent-safe Observe sink.
type observeLog struct {
	mu   sync.Mutex
	byIx map[int]float64 // run index -> observed CPT
	n    int
}

func (o *observeLog) hook() func(journal.Key, machine.Result) {
	return func(k journal.Key, r machine.Result) {
		o.mu.Lock()
		defer o.mu.Unlock()
		if o.byIx == nil {
			o.byIx = map[int]float64{}
		}
		o.byIx[k.Index] = r.CPT
		o.n++
	}
}

func TestObserveSeesEveryRunOnce(t *testing.T) {
	for _, width := range []int{1, 4, runtime.NumCPU()} {
		t.Run(label(width), func(t *testing.T) {
			plain := resumeExperiment(width)
			want, err := plain.RunSpace()
			if err != nil {
				t.Fatal(err)
			}
			var log observeLog
			e := resumeExperiment(width)
			e.Resilience = core.Resilience{Observe: (&log).hook()}
			sp, err := e.RunSpace()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(renderSpace(sp), renderSpace(want)) {
				t.Errorf("width %d: observed run differs from plain run", width)
			}
			if log.n != e.Runs || len(log.byIx) != e.Runs {
				t.Fatalf("width %d: observed %d calls over %d indices, want %d runs once each",
					width, log.n, len(log.byIx), e.Runs)
			}
			for i, v := range sp.Values {
				if log.byIx[i] != v {
					t.Errorf("width %d: run %d observed CPT %v, space holds %v", width, i, log.byIx[i], v)
				}
			}
		})
	}
}

func TestObserveFedFromCacheReplay(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.CreateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := resumeExperiment(4)
	e.Resilience = core.Resilience{Journal: jw}
	sp, err := e.RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	jc, jw2, err := journal.OpenDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	var log observeLog
	r := resumeExperiment(4)
	r.Resilience = core.Resilience{Journal: jw2, Cache: jc, Observe: (&log).hook()}
	full, err := r.RunSpace() // whole-space CachedSpace replay
	if err != nil {
		t.Fatal(err)
	}
	if log.n != r.Runs {
		t.Fatalf("cache replay observed %d calls, want %d", log.n, r.Runs)
	}
	for i, v := range full.Values {
		if log.byIx[i] != v || v != sp.Values[i] {
			t.Errorf("run %d: observed %v, replayed %v, original %v", i, log.byIx[i], v, sp.Values[i])
		}
	}
}
