// Package core implements the paper's primary contribution: the
// statistical simulation methodology of §4–§5.
//
// The method: run each (configuration, workload) pair many times from
// the same initial conditions, each run with a unique pseudo-random
// perturbation seed; treat the runs as a sample from the space of
// possible executions; and use standard statistics — the Wrong
// Conclusion Ratio as a diagnostic, confidence intervals and hypothesis
// tests as decision procedures, ANOVA to weigh time against space
// variability, and sample-size estimation to plan experiments.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"varsim/internal/config"
	"varsim/internal/fleet"
	"varsim/internal/journal"
	"varsim/internal/machine"
	"varsim/internal/rng"
	"varsim/internal/sampling"
	"varsim/internal/stats"
	"varsim/internal/workloads"
)

// Space is a sample of performance estimates (cycles per transaction)
// from multiple perturbed runs of one configuration — an empirical slice
// of the space of possible executions.
type Space struct {
	Label   string
	Values  []float64
	Results []machine.Result
	// Missing lists run indices a graceful drain left unexecuted
	// (ascending); empty for a complete space. Values and Results hold
	// only the runs that did execute — a drained space is a shorter
	// sample, not one padded with zeros.
	Missing []int
}

// Incomplete reports whether the space was cut short by a drain.
func (s Space) Incomplete() bool { return len(s.Missing) > 0 }

// Summary returns descriptive statistics of the space.
func (s Space) Summary() stats.Summary { return stats.Summarize(s.Values) }

// CI returns the confidence interval for the space's mean.
func (s Space) CI(confidence float64) (stats.ConfidenceInterval, error) {
	return stats.CI(s.Values, confidence)
}

// WCR computes the Wrong Conclusion Ratio of §4.1: the fraction of all
// single-run comparison pairs (one run from each configuration) whose
// conclusion contradicts the relationship between the configurations'
// true (sample-mean) performance. slow and fast are runtimes (cycles per
// transaction) of the two configurations; the "correct" conclusion is
// whichever direction the two means exhibit.
func WCR(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	meanDiff := stats.Mean(a) - stats.Mean(b)
	if meanDiff == 0 {
		return 0
	}
	wrong := 0
	for _, x := range a {
		for _, y := range b {
			d := x - y
			if d != 0 && (d > 0) != (meanDiff > 0) {
				wrong++
			}
		}
	}
	return float64(wrong) / float64(len(a)*len(b))
}

// Comparison is the full statistical comparison of two configurations.
type Comparison struct {
	Slower, Faster   Space // ordered by sample mean (Slower has higher CPT)
	MeanDiffPct      float64
	WCRPct           float64
	TTest            stats.TTestResult
	CISlower, CIFast stats.ConfidenceInterval
	CIsOverlap       bool
}

// Conclusion renders the comparison verdict at significance level alpha.
func (c Comparison) Conclusion(alpha float64) string {
	if c.TTest.Reject(alpha) {
		return fmt.Sprintf("%s outperforms %s (p=%.4f < %.3f)",
			c.Faster.Label, c.Slower.Label, c.TTest.P, alpha)
	}
	return fmt.Sprintf("no significant difference between %s and %s (p=%.4f >= %.3f)",
		c.Faster.Label, c.Slower.Label, c.TTest.P, alpha)
}

// Compare runs the §5.1 procedures on two spaces.
func Compare(a, b Space, confidence float64) (Comparison, error) {
	if len(a.Values) < 2 || len(b.Values) < 2 {
		return Comparison{}, stats.ErrInsufficientData
	}
	slower, faster := a, b
	if stats.Mean(a.Values) < stats.Mean(b.Values) {
		slower, faster = b, a
	}
	ms, mf := stats.Mean(slower.Values), stats.Mean(faster.Values)
	var tt stats.TTestResult
	var err error
	if len(slower.Values) == len(faster.Values) {
		tt, err = stats.TTestOneSided(slower.Values, faster.Values)
	} else {
		tt, err = stats.WelchTTest(slower.Values, faster.Values)
	}
	if err != nil {
		return Comparison{}, err
	}
	cis, err := stats.CI(slower.Values, confidence)
	if err != nil {
		return Comparison{}, err
	}
	cif, err := stats.CI(faster.Values, confidence)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Slower: slower, Faster: faster,
		MeanDiffPct: 100 * (ms - mf) / mf,
		WCRPct:      100 * WCR(slower.Values, faster.Values),
		TTest:       tt,
		CISlower:    cis, CIFast: cif,
		CIsOverlap: cis.Overlaps(cif),
	}, nil
}

// Experiment describes one simulation experiment: a configuration, a
// workload, how long to warm up, how much to measure, and how many
// perturbed runs to sample.
type Experiment struct {
	Label        string
	Config       config.Config
	Workload     string
	WorkloadSeed uint64 // the shared initial conditions ("checkpoint identity")
	WarmupTxns   int64  // transactions executed before the checkpoint is taken
	MeasureTxns  int64  // transactions per measured run
	Runs         int
	SeedBase     uint64 // perturbation seeds are derived from this
	// Workers is the fleet width for branching the perturbed runs:
	// 0 or 1 runs them sequentially on the calling goroutine, n > 1
	// fans them out over n fleet workers, and a negative value selects
	// one worker per host CPU (fleet.DefaultWorkers). Any value yields
	// byte-identical results — see docs/PARALLELISM.md.
	Workers int
	// DigestIntervalNS, when positive, records an interval state digest
	// every DigestIntervalNS of simulated time in each run (see
	// internal/digest); RunSpaceDigests returns the streams alongside
	// the space. Serialized with the spec so a -resume replays the same
	// cadence it journaled.
	DigestIntervalNS int64 `json:"digest_interval_ns,omitempty"`
	// Adaptive, when non-nil, switches the experiment to the adaptive
	// sampling scheduler (AdaptiveSpace): Runs becomes the fixed-N
	// baseline the runs-saved accounting compares against, and the
	// target's stopping rule decides the actual spend. Serialized with
	// the spec so a -resume replays the same stopping rule — and the
	// same journaled decisions — the interrupted run used.
	Adaptive *sampling.Target `json:"adaptive,omitempty"`
	// Resilience carries the crash-safety plumbing (journal, resume
	// cache, retry/timeout budget, drain signal); the zero value means
	// plain in-memory execution. Excluded from JSON so experiment spec
	// files (cmd/varsim -journal) serialize cleanly.
	Resilience Resilience `json:"-"`
}

// Resilience bundles the optional crash-safety plumbing an experiment
// threads into its run fleet — see docs/RESILIENCE.md. All fields are
// optional; the zero value is plain, journal-free execution.
type Resilience struct {
	// Journal, when non-nil, receives one durable record per settled
	// run (success or terminal failure) as the fleet completes it.
	Journal *journal.Writer
	// Cache, when non-nil, is the replayed journal of a previous
	// attempt: runs whose (experiment, config hash, seed, index) key
	// has an ok record are merged from the cache instead of re-run.
	Cache *journal.Cache
	// JobTimeout bounds each run attempt by wall clock; 0 = unbounded.
	JobTimeout time.Duration
	// Retries is the number of extra attempts after a failed run.
	Retries int
	// Stop, when non-nil, drains the fleet once closed: in-flight runs
	// finish and are journaled, unstarted runs are reported in
	// Space.Missing.
	Stop <-chan struct{}
	// Observe, when non-nil, sees every successful run's result — live
	// from the worker that settled it, and replayed for cache hits (both
	// per-run hits and whole-space CachedSpace replays), so a resumed
	// experiment feeds the same observations a fresh one would. It is a
	// pure observer for the precision observatory (internal/precision):
	// it must never feed anything back into the simulation, and because
	// live calls arrive in host completion order, its state is not part
	// of the byte-identical output contract. Implementations must be
	// safe for concurrent calls.
	Observe func(key journal.Key, r machine.Result)
	// TestHook injects scripted faults (internal/faultinject); tests
	// only, nil on every production path.
	TestHook fleet.TestHook
}

// enabled reports whether any resilience feature is active, so the
// plain path stays exactly the historical BranchSpace.
func (r Resilience) enabled() bool {
	return r.Journal != nil || r.Cache != nil || r.JobTimeout > 0 ||
		r.Retries > 0 || r.Stop != nil || r.TestHook != nil || r.Observe != nil
}

// Validate checks the experiment definition.
func (e Experiment) Validate() error {
	if e.Runs <= 0 {
		return errors.New("core: experiment needs at least one run")
	}
	if e.MeasureTxns <= 0 {
		return errors.New("core: experiment needs a positive measurement length")
	}
	if e.WarmupTxns < 0 {
		return errors.New("core: negative warmup")
	}
	return e.Config.Validate()
}

// Prepare builds the experiment's machine, runs the warmup, and returns
// the warmed machine — the paper's "checkpoint" from which all runs
// start (§3.2.2).
func (e Experiment) Prepare() (*machine.Machine, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	wl, err := workloads.New(e.Workload, e.Config, e.WorkloadSeed)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(e.Config, wl, rng.Derive(e.SeedBase, 0))
	if err != nil {
		return nil, err
	}
	if e.WarmupTxns > 0 {
		if _, err := m.Run(e.WarmupTxns); err != nil {
			return nil, fmt.Errorf("core: warmup: %w", err)
		}
	}
	return m, nil
}

// RunSpace performs the experiment: it warms up once, snapshots, and
// branches Runs perturbed futures — exactly the paper's multiple-runs
// methodology (§3.3, §5.1). The branches execute on e.Workers fleet
// workers.
//
// When a resume cache covers every run, the whole space is replayed
// from the journal without preparing the machine — the warmup itself
// is skipped, which is what makes resuming a finished experiment
// nearly free.
func (e Experiment) RunSpace() (Space, error) {
	if e.Adaptive != nil {
		sp, _, err := e.AdaptiveSpace(*e.Adaptive)
		return sp, err
	}
	if sp, ok := e.CachedSpace(); ok {
		return sp, nil
	}
	base, err := e.Prepare()
	if err != nil {
		return Space{}, err
	}
	return BranchSpaceRes(base, e.Label, e.Runs, e.MeasureTxns, e.SeedBase, e.Workers, e.Resilience)
}

// branchKey is the journal identity of run i of a space: the
// experiment label, the hash of the machine configuration, the run's
// derived perturbation seed, and its index. Replay matches on the full
// key, so a journal from a different config, seed base, or label never
// contaminates a resume.
func branchKey(label, cfgHash string, seedBase uint64, i int) journal.Key {
	return journal.Key{
		Experiment: label,
		ConfigHash: cfgHash,
		Seed:       rng.Derive(seedBase, 1+uint64(i)),
		Index:      i,
	}
}

// RunKey returns run i's journal key — the identity the experiment's
// run and digest records are filed under. Exposed so tools reading a
// journal post-hoc (varsim diff) address runs exactly as the fleet
// wrote them.
func (e Experiment) RunKey(i int) journal.Key {
	return branchKey(e.Label, journal.ConfigHash(e.Config), e.SeedBase, i)
}

// CachedSpace replays the full space from the resume cache when every
// run has an ok journal record. Returns false on any miss or
// undecodable record — the caller then takes the normal prepare-and-run
// path, where per-run cache hits still apply.
func (e Experiment) CachedSpace() (Space, bool) {
	// An adaptive experiment must never take the fixed-N whole-space
	// replay: the scheduler may stop short of (or past) Runs, and a
	// CachedSpace replay racing an adaptive resume would feed the
	// precision observer the overlap twice.
	if e.Resilience.Cache == nil || e.Runs <= 0 || e.Adaptive != nil || e.Validate() != nil {
		return Space{}, false
	}
	cfgHash := journal.ConfigHash(e.Config)
	sp := Space{
		Label:   e.Label,
		Values:  make([]float64, e.Runs),
		Results: make([]machine.Result, e.Runs),
	}
	for i := 0; i < e.Runs; i++ {
		rec, ok := e.Resilience.Cache.Get(branchKey(e.Label, cfgHash, e.SeedBase, i))
		if !ok {
			return Space{}, false
		}
		if err := json.Unmarshal(rec.Result, &sp.Results[i]); err != nil {
			return Space{}, false
		}
		sp.Values[i] = sp.Results[i].CPT
	}
	// A whole-space replay never reaches the fleet, so feed the precision
	// observer here, in run-index order — only after every record decoded,
	// so a fallthrough to the normal path cannot double-observe.
	if e.Resilience.Observe != nil {
		for i := range sp.Results {
			e.Resilience.Observe(branchKey(e.Label, cfgHash, e.SeedBase, i), sp.Results[i])
		}
	}
	return sp, true
}

// BranchSpace branches n perturbed measurement runs of measureTxns
// transactions each from the given checkpoint machine, executing them
// on a fleet of workers (0 or 1 = sequential on the calling goroutine,
// negative = one worker per host CPU).
//
// Each branch is a pure job — a private Snapshot clone re-seeded from
// (seedBase, index) — and the fleet merges results by job index, so the
// space is byte-identical for every worker count. The checkpoint is
// frozen (machine.Machine.Freeze) before the fleet starts: Snapshot on
// a frozen machine only reads it, and it stays quiescent for the
// duration, so the copy-on-write clones may be taken concurrently
// inside the jobs.
func BranchSpace(checkpoint *machine.Machine, label string, n int, measureTxns int64, seedBase uint64, workers int) (Space, error) {
	return BranchSpaceRes(checkpoint, label, n, measureTxns, seedBase, workers, Resilience{})
}

// BranchSpaceRes is BranchSpace with the crash-safety plumbing wired
// in: journal appends as runs settle, resume-cache replay, per-run
// timeout and retry, and graceful drain. Because retry re-invokes the
// same job closure, a retried run re-derives its original seed — the
// retry/seed contract of docs/RESILIENCE.md.
//
// A drain returns the partial space (Values/Results hold the runs that
// finished, Missing the indices that never ran) together with the
// *fleet.Incomplete error, so resilience-aware callers can render a
// resumable partial report while everyone else fails loudly.
func BranchSpaceRes(checkpoint *machine.Machine, label string, n int, measureTxns int64, seedBase uint64, workers int, res Resilience) (Space, error) {
	sp := Space{Label: label}
	if n <= 0 {
		return sp, nil
	}
	cfgHash := journal.ConfigHash(checkpoint.Config())
	opts := branchOptions(label, cfgHash, seedBase, workers, res)
	// Freeze before the fleet starts: fleet jobs snapshot the checkpoint
	// concurrently, and Snapshot on a frozen machine performs no writes.
	checkpoint.Freeze()
	results, err := fleet.Run(opts, n, func(i int) (machine.Result, error) {
		m := checkpoint.Snapshot()
		m.SetPerturbSeed(rng.Derive(seedBase, 1+uint64(i)))
		return m.Run(measureTxns)
	})
	if err != nil {
		var inc *fleet.Incomplete
		if errors.As(err, &inc) {
			miss := make(map[int]bool, len(inc.Missing))
			for _, i := range inc.Missing {
				miss[i] = true
			}
			for i, r := range results {
				if !miss[i] {
					sp.Values = append(sp.Values, r.CPT)
					sp.Results = append(sp.Results, r)
				}
			}
			sp.Missing = inc.Missing
			return sp, err
		}
		return Space{}, runError(err)
	}
	sp.Results = results
	sp.Values = make([]float64, n)
	for i, res := range results {
		sp.Values[i] = res.CPT
	}
	return sp, nil
}

// branchOptions wires a Resilience bundle into the fleet options every
// space-branching path shares (BranchSpaceRes, BranchRound): journal
// replay through Cached, observation and journal appends through
// OnResult, all keyed by the run's global (label, config hash, derived
// seed, index) identity — so a round-based schedule files runs under
// exactly the keys the fixed-N path would.
func branchOptions(label, cfgHash string, seedBase uint64, workers int, res Resilience) fleet.Options[machine.Result] {
	opts := fleet.Options[machine.Result]{
		Workers:  fleet.Width(workers),
		Timeout:  res.JobTimeout,
		Retries:  res.Retries,
		Stop:     res.Stop,
		TestHook: res.TestHook,
		Labels:   []string{"experiment", label, "config", cfgHash},
	}
	if res.Cache != nil {
		opts.Cached = func(i int) (machine.Result, bool) {
			key := branchKey(label, cfgHash, seedBase, i)
			rec, ok := res.Cache.Get(key)
			if !ok {
				return machine.Result{}, false
			}
			var r machine.Result
			if err := json.Unmarshal(rec.Result, &r); err != nil {
				return machine.Result{}, false // undecodable hit: re-run
			}
			// Cache hits bypass OnResult, so replays feed the precision
			// observer here — a resumed space observes every run once.
			if res.Observe != nil {
				res.Observe(key, r)
			}
			return r, true
		}
	}
	if res.Journal != nil || res.Observe != nil {
		opts.OnResult = func(i, attempts int, v machine.Result, err error) {
			key := branchKey(label, cfgHash, seedBase, i)
			if err == nil && res.Observe != nil {
				res.Observe(key, v)
			}
			if res.Journal == nil {
				return
			}
			rec := journal.Record{Key: key, Attempts: attempts}
			if err != nil {
				rec.Status = journal.StatusFailed
				rec.Error = err.Error()
			} else if raw, merr := json.Marshal(v); merr != nil {
				rec.Status = journal.StatusFailed
				rec.Error = "core: unencodable result: " + merr.Error()
			} else {
				rec.Status = journal.StatusOK
				rec.Result = raw
			}
			// Append errors are sticky on the writer; the CLIs check
			// Writer.Err() at teardown rather than failing runs here.
			//varsim:allow stickyerr fire-and-forget by design: Writer.Err is checked at CLI teardown
			res.Journal.Append(rec)
		}
	}
	return opts
}

// runError rewrites a fleet job failure in the package's historical
// "run %d" terms, preserving the wrapped cause.
func runError(err error) error {
	var je *fleet.JobError
	if errors.As(err, &je) {
		return fmt.Errorf("core: run %d: %w", je.Index, je.Err)
	}
	return err
}

// TimeSample implements §5.2's systematic sampling of a workload's
// lifetime: it warms the workload to each checkpoint in turn (the
// checkpoints slice holds cumulative transaction counts, ascending) and
// branches a space of runs from each. The returned spaces feed ANOVA to
// decide whether time variability is significant.
func (e Experiment) TimeSample(checkpoints []int64) ([]Space, error) {
	if len(checkpoints) == 0 {
		return nil, errors.New("core: no checkpoints")
	}
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			return nil, errors.New("core: checkpoints must be ascending")
		}
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	wl, err := workloads.New(e.Workload, e.Config, e.WorkloadSeed)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(e.Config, wl, rng.Derive(e.SeedBase, 0))
	if err != nil {
		return nil, err
	}
	var spaces []Space
	done := int64(0)
	for ci, ck := range checkpoints {
		if ck > done {
			if _, err := m.Run(ck - done); err != nil {
				return nil, fmt.Errorf("core: warmup to checkpoint %d: %w", ck, err)
			}
			done = ck
		}
		sp, err := BranchSpaceRes(m, fmt.Sprintf("%s@%d", e.Label, ck), e.Runs, e.MeasureTxns, rng.Derive(e.SeedBase, 0x100+uint64(ci)), e.Workers, e.Resilience)
		if err != nil {
			return nil, err
		}
		spaces = append(spaces, sp)
	}
	return spaces, nil
}

// RandomCheckpoints draws n checkpoint positions uniformly from
// (0, lifetime] and returns them sorted — the "sampling techniques other
// than systematic sampling" the paper leaves as future work (§5.2).
// Deterministic in seed.
func RandomCheckpoints(n int, lifetime int64, seed uint64) []int64 {
	if n <= 0 || lifetime <= 0 {
		return nil
	}
	r := rng.New(seed)
	set := make(map[int64]bool, n)
	for len(set) < n {
		ck := 1 + r.Int63n(lifetime)
		set[ck] = true
	}
	out := make([]int64, 0, n)
	//varsim:allow maporder set-member collection only; sorted ascending below
	for ck := range set {
		out = append(out, ck)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SystematicCheckpoints returns n checkpoints at fixed intervals through
// the lifetime — the paper's systematic sampling (§5.2).
func SystematicCheckpoints(n int, lifetime int64) []int64 {
	if n <= 0 || lifetime <= 0 {
		return nil
	}
	out := make([]int64, 0, n)
	for i := int64(1); i <= int64(n); i++ {
		out = append(out, i*lifetime/int64(n))
	}
	return out
}

// ANOVAOverCheckpoints runs one-way ANOVA with checkpoints as groups:
// a significant result means time variability cannot be attributed to
// space variability, so experiments must sample multiple starting points
// (§5.2).
func ANOVAOverCheckpoints(spaces []Space) (stats.ANOVAResult, error) {
	groups := make([][]float64, len(spaces))
	for i, s := range spaces {
		groups[i] = s.Values
	}
	return stats.OneWayANOVA(groups)
}

// PlanRuns estimates the number of runs needed for the experiment's
// conclusions, given pilot data: the relative-error form of §5.1.1 and
// the hypothesis-test form of §5.1.2.
type Plan struct {
	ByRelativeError int // runs for relative error r at the confidence level
	ByHypothesis    int // runs for one-sided significance between two pilots
}

// PlanRuns sizes an experiment from pilot spaces of the two
// configurations to compare. relErr is the tolerated relative error of
// the mean (e.g. 0.04); alpha the tolerated wrong-conclusion
// probability.
func PlanRuns(pilotA, pilotB Space, relErr, alpha float64) Plan {
	covFrac := stats.CoV(pilotA.Values) / 100
	p := Plan{
		ByRelativeError: stats.SampleSizeRelErr(covFrac, relErr, 1-alpha),
	}
	ma, mb := stats.Mean(pilotA.Values), stats.Mean(pilotB.Values)
	slow, fast := ma, mb
	if slow < fast {
		slow, fast = fast, slow
	}
	sd := (stats.StdDev(pilotA.Values) + stats.StdDev(pilotB.Values)) / 2
	p.ByHypothesis = stats.MinRunsProjected(slow, fast, sd, alpha)
	return p
}
