// Adaptive-schedule integration tests: the docs/SAMPLING.md
// determinism contract asserted over rendered report bytes — width
// independence, kill-and-resume with journaled decision replay,
// shuffled completion order under retries, exactly-once observation,
// and recovery from a journal torn mid-decision-record. External test
// package so the spaces and arms render through internal/report.
package core_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"varsim/internal/config"
	"varsim/internal/core"
	"varsim/internal/faultinject"
	"varsim/internal/fleet"
	"varsim/internal/journal"
	"varsim/internal/machine"
	"varsim/internal/report"
	"varsim/internal/sampling"
)

// adaptiveTarget never converges on real perturbation noise (the
// relative-error target is far below the workload's CoV), so every
// arm runs to the MaxRuns budget: a deterministic 3-round schedule
// (pilot 4, then 4+4) whose run count the tests can rely on.
func adaptiveTarget() sampling.Target {
	return sampling.Target{RelErr: 1e-6, MinRuns: 4, MaxRuns: 12, RoundSize: 4}
}

// adaptiveExperiment mirrors resumeExperiment; Runs is the fixed-N
// baseline the runs-saved accounting compares against.
func adaptiveExperiment(workers int) core.Experiment {
	cfg := config.Default()
	cfg.NumCPUs = 4
	return core.Experiment{
		Label:        "adaptive-test",
		Config:       cfg,
		Workload:     "oltp",
		WorkloadSeed: 7,
		WarmupTxns:   20,
		MeasureTxns:  20,
		Runs:         20,
		SeedBase:     0xFEED,
		Workers:      workers,
	}
}

// renderAdaptive is the byte-identity surface: the space plus the
// adaptive report built from the arm.
func renderAdaptive(sp core.Space, arm sampling.Arm, t sampling.Target) []byte {
	var buf bytes.Buffer
	report.WriteSpace(&buf, sp)
	rep := sampling.Report{Target: t.Normalize(), Arms: []sampling.Arm{arm}}
	rep.Finalize()
	report.WriteSampling(&buf, rep)
	return buf.Bytes()
}

// TestAdaptiveWidthByteIdentical pins the barrier contract: decisions
// depend only on the index-ordered merge of each round, so the
// adaptive schedule — which runs it executes and what it reports — is
// byte-identical at any fleet width.
func TestAdaptiveWidthByteIdentical(t *testing.T) {
	tgt := adaptiveTarget()
	base := adaptiveExperiment(1)
	sp, arm, err := base.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if arm.Status != sampling.StatusBudget || arm.Executed != 12 {
		t.Fatalf("fixture drifted: want a 12-run budget settle, got %d runs, status %s",
			arm.Executed, arm.Status)
	}
	want := renderAdaptive(sp, arm, tgt)

	for _, width := range []int{4, runtime.NumCPU()} {
		e := adaptiveExperiment(width)
		wsp, warm, err := e.AdaptiveSpace(tgt)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAdaptive(wsp, warm, tgt); !bytes.Equal(got, want) {
			t.Errorf("adaptive schedule differs at width %d\n got:\n%s\nwant:\n%s", width, got, want)
		}
	}
}

// TestAdaptiveRunIdentityMatchesFixedN pins the run-identity half of
// the contract: every run the adaptive schedule executes keeps the
// exact (experiment, config hash, derived seed, run index) identity
// the fixed-N path gives it, so the adaptive values are a prefix of
// the fixed-N space's values.
func TestAdaptiveRunIdentityMatchesFixedN(t *testing.T) {
	tgt := adaptiveTarget()
	e := adaptiveExperiment(4)
	sp, arm, err := e.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatal(err)
	}
	f := adaptiveExperiment(4)
	f.Runs = arm.Executed
	fixed, err := f.RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Values) != len(fixed.Values) {
		t.Fatalf("adaptive executed %d runs, fixed-N prefix has %d", len(sp.Values), len(fixed.Values))
	}
	for i := range sp.Values {
		if sp.Values[i] != fixed.Values[i] {
			t.Errorf("run %d: adaptive %v != fixed-N %v — identity drifted", i, sp.Values[i], fixed.Values[i])
		}
	}
}

// TestAdaptiveKillAndResumeByteIdentical drains an adaptive run
// mid-flight and resumes it from the journal: the resumed schedule
// must replay the journaled runs and decisions and end byte-identical
// to an uninterrupted run, at every fleet width.
func TestAdaptiveKillAndResumeByteIdentical(t *testing.T) {
	tgt := adaptiveTarget()
	base := adaptiveExperiment(1)
	bsp, barm, err := base.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAdaptive(bsp, barm, tgt)

	for _, width := range []int{1, 4, runtime.NumCPU()} {
		t.Run(label(width), func(t *testing.T) {
			dir := t.TempDir()
			jw, err := journal.CreateDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			hook := &faultinject.Hook{StopAfter: 2, Stop: make(chan struct{})}
			e := adaptiveExperiment(width)
			e.Resilience = core.Resilience{Journal: jw, Stop: hook.Stop, TestHook: hook}
			part, parm, err := e.AdaptiveSpace(tgt)
			var inc *fleet.Incomplete
			if !errors.As(err, &inc) {
				t.Fatalf("drained adaptive run returned %v, want *fleet.Incomplete", err)
			}
			if parm.Status != sampling.StatusIncomplete {
				t.Fatalf("drained arm status = %s, want %s", parm.Status, sampling.StatusIncomplete)
			}
			if got := renderAdaptive(part, parm, tgt); !bytes.Contains(got, []byte("INCOMPLETE")) {
				t.Fatalf("partial adaptive report missing INCOMPLETE banner:\n%s", got)
			}
			if jerr := jw.Err(); jerr != nil {
				t.Fatalf("journal writer failed during drain: %v", jerr)
			}
			// No jw.Close(): a killed process never closes its journal.

			jc, jw2, err := journal.OpenDir(dir, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			if jc.Len() != len(part.Values) {
				t.Fatalf("journal replayed %d run records, drained run settled %d", jc.Len(), len(part.Values))
			}
			r := adaptiveExperiment(width)
			r.Resilience = core.Resilience{Journal: jw2, Cache: jc}
			full, farm, err := r.AdaptiveSpace(tgt)
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if cerr := jw2.Close(); cerr != nil {
				t.Fatalf("resume journal close: %v", cerr)
			}
			if got := renderAdaptive(full, farm, tgt); !bytes.Equal(got, want) {
				t.Errorf("resumed adaptive run differs from uninterrupted run at width %d\n got:\n%s\nwant:\n%s",
					width, got, want)
			}
			// The finished journal carries one decision per barrier; a
			// second resume replays the schedule without running anything.
			jc2, jw3, err := journal.OpenDir(dir, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			defer jw3.Close()
			if jc2.DecisionLen() != farm.Rounds {
				t.Errorf("journal holds %d decisions, schedule took %d barriers", jc2.DecisionLen(), farm.Rounds)
			}
			if jc2.Len() != farm.Executed {
				t.Errorf("journal holds %d run records, schedule executed %d", jc2.Len(), farm.Executed)
			}
		})
	}
}

// TestAdaptiveShuffledCompletionByteIdentical shuffles host completion
// order — every run fails its first attempt and retries, so workers
// settle out of index order — and asserts the adaptive schedule still
// renders byte-identically: decisions read the index-ordered merge,
// never arrival order.
func TestAdaptiveShuffledCompletionByteIdentical(t *testing.T) {
	tgt := adaptiveTarget()
	clean := adaptiveExperiment(4)
	csp, carm, err := clean.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAdaptive(csp, carm, tgt)

	failEach := map[int]int{}
	for i := 0; i < 12; i++ {
		failEach[i] = 1
	}
	e := adaptiveExperiment(4)
	e.Resilience = core.Resilience{
		Retries:  2,
		TestHook: &faultinject.Hook{FailTimes: failEach},
	}
	sp, arm, err := e.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatalf("retried adaptive run failed: %v", err)
	}
	if got := renderAdaptive(sp, arm, tgt); !bytes.Equal(got, want) {
		t.Errorf("retried adaptive run differs from clean run\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdaptiveResumeObservesExactlyOnce is the regression test for the
// precision-tracker double count: when a resumed journal overlaps the
// round the drain interrupted, the resubmitted round replays some runs
// from the cache while executing the rest — and without the
// ObserveOnce guard the overlap was observed twice (once by the round
// replay, once by the per-run cache hit). Every run key must reach the
// observer exactly once across the whole resume.
func TestAdaptiveResumeObservesExactlyOnce(t *testing.T) {
	tgt := adaptiveTarget()
	dir := t.TempDir()
	jw, err := journal.CreateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	hook := &faultinject.Hook{StopAfter: 2, Stop: make(chan struct{})}
	e := adaptiveExperiment(4)
	e.Resilience = core.Resilience{Journal: jw, Stop: hook.Stop, TestHook: hook}
	_, _, err = e.AdaptiveSpace(tgt)
	var inc *fleet.Incomplete
	if !errors.As(err, &inc) {
		t.Fatalf("drained adaptive run returned %v, want *fleet.Incomplete", err)
	}

	jc, jw2, err := journal.OpenDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	var mu sync.Mutex
	seen := map[journal.Key]int{}
	r := adaptiveExperiment(4)
	r.Resilience = core.Resilience{
		Journal: jw2, Cache: jc,
		Observe: func(k journal.Key, _ machine.Result) {
			mu.Lock()
			seen[k]++
			mu.Unlock()
		},
	}
	_, arm, err := r.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if len(seen) != arm.Executed {
		t.Errorf("observer saw %d distinct keys, schedule executed %d runs", len(seen), arm.Executed)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %+v observed %d times, want exactly once", k, n)
		}
	}
}

// TestAdaptiveResumeTornDecisionRecord tears the journal mid-way
// through its final record — the settling decision — and resumes: the
// recovery pass must drop the torn line, the driver must re-derive the
// lost decision from the replayed values, and the result must stay
// byte-identical to the uninterrupted run.
func TestAdaptiveResumeTornDecisionRecord(t *testing.T) {
	tgt := adaptiveTarget()
	dir := t.TempDir()
	jw, err := journal.CreateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := adaptiveExperiment(4)
	e.Resilience = core.Resilience{Journal: jw}
	sp, arm, err := e.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	want := renderAdaptive(sp, arm, tgt)

	// Tear the file inside its last record. The final append is the
	// settling barrier decision, so the truncation simulates a crash
	// mid-decision-write.
	path := filepath.Join(dir, journal.FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	jc, jw2, err := journal.OpenDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	if jc.DecisionLen() >= arm.Rounds {
		t.Fatalf("truncation did not tear a decision: %d decisions survive of %d", jc.DecisionLen(), arm.Rounds)
	}
	r := adaptiveExperiment(4)
	r.Resilience = core.Resilience{Journal: jw2, Cache: jc}
	full, farm, err := r.AdaptiveSpace(tgt)
	if err != nil {
		t.Fatalf("resume after torn decision failed: %v", err)
	}
	if got := renderAdaptive(full, farm, tgt); !bytes.Equal(got, want) {
		t.Errorf("resume after torn decision differs from uninterrupted run\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestObserveOnce pins the deduplication guard itself: a wrapped
// observer fires once per key however many times a replay overlap
// repeats it, and a nil observer stays nil (the guard adds no cost to
// the plain path).
func TestObserveOnce(t *testing.T) {
	var mu sync.Mutex
	seen := map[journal.Key]int{}
	r := core.Resilience{Observe: func(k journal.Key, _ machine.Result) {
		mu.Lock()
		seen[k]++
		mu.Unlock()
	}}
	once := r.ObserveOnce()
	a := journal.Key{Experiment: "e", ConfigHash: "h", Seed: 1, Index: 0}
	b := journal.Key{Experiment: "e", ConfigHash: "h", Seed: 2, Index: 1}
	for i := 0; i < 3; i++ {
		once.Observe(a, machine.Result{})
		once.Observe(b, machine.Result{})
	}
	if seen[a] != 1 || seen[b] != 1 {
		t.Errorf("observed a=%d b=%d times, want exactly once each", seen[a], seen[b])
	}
	if nilRes := (core.Resilience{}).ObserveOnce(); nilRes.Observe != nil {
		t.Error("ObserveOnce invented an observer for the plain path")
	}
}

// TestAdaptiveMatrixWidthAndPruneDeterminism runs a three-arm matrix
// whose configurations separate (DRAM supply latency swept far apart)
// and pins both halves of the matrix contract: the prune verdicts are
// decided by interval separation — so the slow arms settle as pruned —
// and the whole report renders byte-identically at every width.
func TestAdaptiveMatrixWidthAndPruneDeterminism(t *testing.T) {
	tgt := adaptiveTarget()
	matrix := func(width int) []core.Experiment {
		es := make([]core.Experiment, 3)
		for i, supply := range []int64{80, 400, 800} {
			e := adaptiveExperiment(width)
			e.Label = [3]string{"dram-80", "dram-400", "dram-800"}[i]
			e.Config.MemSupplyNS = supply
			es[i] = e
		}
		return es
	}
	render := func(spaces []core.Space, rep sampling.Report) []byte {
		var buf bytes.Buffer
		for _, sp := range spaces {
			report.WriteSpace(&buf, sp)
		}
		report.WriteSampling(&buf, rep)
		return buf.Bytes()
	}
	spaces, rep, err := core.AdaptiveMatrix(matrix(1), tgt)
	if err != nil {
		t.Fatal(err)
	}
	want := render(spaces, rep)
	if len(rep.Pruned) == 0 {
		t.Error("no arm pruned: 10x DRAM latency spread should separate the intervals")
	}
	for _, name := range rep.Pruned {
		if name == "dram-80" {
			t.Error("the best arm (dram-80) was pruned")
		}
	}
	for _, width := range []int{4, runtime.NumCPU()} {
		wspaces, wrep, err := core.AdaptiveMatrix(matrix(width), tgt)
		if err != nil {
			t.Fatal(err)
		}
		if got := render(wspaces, wrep); !bytes.Equal(got, want) {
			t.Errorf("matrix differs at width %d\n got:\n%s\nwant:\n%s", width, got, want)
		}
	}
}
