// Digest-stream orchestration tests: the divergence observatory's
// core contract — byte-identical digest streams at every fleet width
// and across kill-and-resume — plus the space-level attribution view.
package core_test

import (
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"testing"

	"varsim/internal/core"
	"varsim/internal/faultinject"
	"varsim/internal/fleet"
	"varsim/internal/journal"
)

// digTickNS matches the machine-level digest tests' cadence: small
// enough that a 20-transaction window records a useful stream.
const digTickNS = 20_000

func digestExperiment(workers int) core.Experiment {
	e := resumeExperiment(workers)
	e.Label = "digest-test"
	e.DigestIntervalNS = digTickNS
	return e
}

// digestBytes canonicalizes a SpaceDigests for byte-identity checks.
func digestBytes(t *testing.T, sd core.SpaceDigests) []byte {
	t.Helper()
	b, err := json.Marshal(sd)
	if err != nil {
		t.Fatalf("marshal digests: %v", err)
	}
	return b
}

// TestSpaceDigestsByteIdenticalAcrossWidths pins the headline property:
// the digest streams, like the space itself, are a pure function of
// (config, seeds) — the fleet width is invisible.
func TestSpaceDigestsByteIdenticalAcrossWidths(t *testing.T) {
	base := digestExperiment(1)
	sp, sd, err := base.RunSpaceDigests()
	if err != nil {
		t.Fatal(err)
	}
	if len(sd.Series) != base.Runs {
		t.Fatalf("got %d digest streams, want %d", len(sd.Series), base.Runs)
	}
	for i, s := range sd.Series {
		if s.Len() == 0 {
			t.Fatalf("run %d recorded no digest samples", i)
		}
	}
	wantSpace := renderSpace(sp)
	wantDig := digestBytes(t, sd)

	for _, width := range []int{4, runtime.NumCPU()} {
		t.Run(label(width), func(t *testing.T) {
			e := digestExperiment(width)
			sp2, sd2, err := e.RunSpaceDigests()
			if err != nil {
				t.Fatal(err)
			}
			if got := renderSpace(sp2); string(got) != string(wantSpace) {
				t.Errorf("space differs at width %d", width)
			}
			if got := digestBytes(t, sd2); string(got) != string(wantDig) {
				t.Errorf("digest streams differ at width %d", width)
			}
		})
	}
}

// TestDigestedKillAndResume drains a digested space mid-flight, then
// resumes from its journal: the resumed space AND every digest stream
// must be byte-identical to an uninterrupted run. This is the property
// that makes post-hoc attribution trustworthy across -resume.
func TestDigestedKillAndResume(t *testing.T) {
	base := digestExperiment(1)
	sp, sd, err := base.RunSpaceDigests()
	if err != nil {
		t.Fatal(err)
	}
	wantSpace := renderSpace(sp)
	wantDig := digestBytes(t, sd)

	dir := t.TempDir()
	jw, err := journal.CreateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	hook := &faultinject.Hook{StopAfter: 2, Stop: make(chan struct{})}
	e := digestExperiment(4)
	e.Resilience = core.Resilience{Journal: jw, Stop: hook.Stop, TestHook: hook}
	part, psd, err := e.RunSpaceDigests()
	var inc *fleet.Incomplete
	if !errors.As(err, &inc) {
		t.Fatalf("drained run returned %v, want *fleet.Incomplete", err)
	}
	if !part.Incomplete() {
		t.Fatal("drained space not marked incomplete")
	}
	if len(psd.Series) != e.Runs {
		t.Fatalf("drained digests lost index alignment: %d streams, want %d", len(psd.Series), e.Runs)
	}
	for _, i := range part.Missing {
		if psd.Series[i].Len() != 0 {
			t.Fatalf("missing run %d has a non-empty digest stream", i)
		}
	}
	// A partial space still attributes: NaN-aligned values must not
	// poison the report.
	att := psd.Attribution(part)
	if _, err := json.Marshal(att); err != nil {
		t.Fatalf("partial attribution does not marshal: %v", err)
	}
	// No jw.Close(): a killed process never closes its journal.

	jc, jw2, err := journal.OpenDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if jc.DigestLen() != jc.Len() {
		t.Fatalf("journal has %d run records but %d digest records", jc.Len(), jc.DigestLen())
	}
	r := digestExperiment(4)
	r.Resilience = core.Resilience{Journal: jw2, Cache: jc}
	full, fsd, err := r.RunSpaceDigests()
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if cerr := jw2.Close(); cerr != nil {
		t.Fatalf("resume journal close: %v", cerr)
	}
	if got := renderSpace(full); string(got) != string(wantSpace) {
		t.Errorf("resumed space differs from uninterrupted run")
	}
	if got := digestBytes(t, fsd); string(got) != string(wantDig) {
		t.Errorf("resumed digest streams differ from uninterrupted run")
	}
}

// TestCachedSpaceDigestsFastPath pins the full-journal fast path and
// its refusal cases: a complete digested journal replays space and
// streams without re-simulating, while a digest-less journal (from a
// plain RunSpace) forces a re-run rather than serving half an answer.
func TestCachedSpaceDigestsFastPath(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.CreateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := digestExperiment(4)
	e.Resilience = core.Resilience{Journal: jw}
	sp, sd, err := e.RunSpaceDigests()
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	jc, jw2, err := journal.OpenDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	r := digestExperiment(4)
	r.Resilience = core.Resilience{Journal: jw2, Cache: jc}
	csp, csd, ok := r.CachedSpaceDigests()
	if !ok {
		t.Fatal("full digested journal did not satisfy CachedSpaceDigests")
	}
	if got := renderSpace(csp); string(got) != string(renderSpace(sp)) {
		t.Error("cached space differs from original run")
	}
	if got := digestBytes(t, csd); string(got) != string(digestBytes(t, sd)) {
		t.Error("cached digest streams differ from original run")
	}

	// Changing the cadence invalidates the cache — half-interval
	// streams must not replay under a different contract.
	r2 := digestExperiment(4)
	r2.DigestIntervalNS = digTickNS * 2
	r2.Resilience = core.Resilience{Cache: jc}
	if _, _, ok := r2.CachedSpaceDigests(); ok {
		t.Error("cache hit despite a digest-cadence mismatch")
	}

	// A digest-less journal (plain RunSpace) must miss entirely.
	dir2 := t.TempDir()
	jw3, err := journal.CreateDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	plain := digestExperiment(4)
	plain.DigestIntervalNS = 0
	plain.Resilience = core.Resilience{Journal: jw3}
	if _, err := plain.RunSpace(); err != nil {
		t.Fatal(err)
	}
	if err := jw3.Close(); err != nil {
		t.Fatal(err)
	}
	jc2, jw4, err := journal.OpenDir(dir2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer jw4.Close()
	r3 := digestExperiment(4)
	r3.Resilience = core.Resilience{Cache: jc2}
	if _, _, ok := r3.CachedSpaceDigests(); ok {
		t.Error("digest-less journal satisfied CachedSpaceDigests")
	}
}

// TestSpaceDigestsAttribution exercises the space-level view on a real
// perturbed space: perturbations make runs diverge from the baseline,
// the attribution counts them, and Diff agrees with the onsets.
func TestSpaceDigestsAttribution(t *testing.T) {
	e := digestExperiment(4)
	sp, sd, err := e.RunSpaceDigests()
	if err != nil {
		t.Fatal(err)
	}
	att := sd.Attribution(sp)
	if att.Runs != e.Runs {
		t.Fatalf("attribution covers %d runs, want %d", att.Runs, e.Runs)
	}
	if att.Diverged == 0 {
		t.Fatal("no run diverged from the baseline under perturbation")
	}
	if att.IntervalNS != digTickNS {
		t.Fatalf("attribution interval %d, want %d", att.IntervalNS, digTickNS)
	}
	total := 0
	for _, f := range att.Forks {
		total += f.Count
	}
	if total != att.Diverged {
		t.Fatalf("fork counts sum to %d, want %d", total, att.Diverged)
	}
	for i, onset := range att.Onsets {
		if onset <= 0 {
			t.Fatalf("onset %d is %d, want positive", i, onset)
		}
	}
	if math.IsNaN(att.OnsetSpreadCorr) {
		t.Fatal("correlation is NaN")
	}
	// Diff must agree with the first onset: run 1 vs run 0.
	if d := sd.Diff(0, 1); d.Diverged && d.TimeNS != att.Onsets[0] {
		t.Fatalf("Diff(0,1) onset %d disagrees with attribution onset %d", d.TimeNS, att.Onsets[0])
	}
}

// TestBranchObservedCombinesTracesAndDigests pins the one-pass
// observatory: traces match BranchTraces exactly (digesting must not
// perturb the trajectory) and the digest streams match RunSpaceDigests.
func TestBranchObservedCombinesTracesAndDigests(t *testing.T) {
	e := digestExperiment(4)
	base, err := e.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	sp, traces, sd, err := core.BranchObserved(base, e.Label, e.Runs, e.MeasureTxns, e.SeedBase, 0, 4, digTickNS)
	if err != nil {
		t.Fatal(err)
	}
	spT, tracesT, err := core.BranchTraces(base, e.Label, e.Runs, e.MeasureTxns, e.SeedBase, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sp.Values {
		if sp.Values[i] != spT.Values[i] {
			t.Fatalf("run %d: observed CPT %v differs from traced %v", i, sp.Values[i], spT.Values[i])
		}
		if len(traces[i]) != len(tracesT[i]) {
			t.Fatalf("run %d: observed trace has %d events, traced %d", i, len(traces[i]), len(tracesT[i]))
		}
	}
	var want core.SpaceDigests
	_, want, err = e.RunSpaceDigests()
	if err != nil {
		t.Fatal(err)
	}
	if string(digestBytes(t, sd)) != string(digestBytes(t, want)) {
		t.Error("observed digest streams differ from RunSpaceDigests")
	}
	if _, _, zero, err := core.BranchObserved(base, e.Label, 2, e.MeasureTxns, e.SeedBase, 0, 1, 0); err != nil {
		t.Fatal(err)
	} else if len(zero.Series) != 0 {
		t.Error("interval 0 still recorded digest streams")
	}
}
