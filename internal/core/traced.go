package core

import (
	"varsim/internal/fleet"
	"varsim/internal/machine"
	"varsim/internal/rng"
	"varsim/internal/trace"
)

// BranchTraces is BranchSpace with structured tracing enabled on every
// branched run: n perturbed runs of measureTxns transactions each from
// the checkpoint machine, returning the space plus each run's event
// stream (capEvents per run, 0 = unbounded). Seeds derive exactly as in
// BranchSpace, so run i here reproduces run i there — the traces are
// the Figure-1 view of the same sample space. Like BranchSpace, the
// runs execute on a fleet of workers with an index-ordered merge, so
// both the space and the per-run streams are byte-identical for every
// worker count.
func BranchTraces(checkpoint *machine.Machine, label string, n int, measureTxns int64, seedBase uint64, capEvents, workers int) (Space, [][]trace.Event, error) {
	sp := Space{Label: label}
	if n <= 0 {
		return sp, nil, nil
	}
	type traced struct {
		res    machine.Result
		events []trace.Event
	}
	branches, err := fleet.Map(fleet.Width(workers), n, func(i int) (traced, error) {
		m := checkpoint.Snapshot()
		m.SetPerturbSeed(rng.Derive(seedBase, 1+uint64(i)))
		m.EnableTrace(capEvents)
		res, err := m.Run(measureTxns)
		if err != nil {
			return traced{}, err
		}
		return traced{res: res, events: m.Trace().Events()}, nil
	})
	if err != nil {
		return Space{}, nil, runError(err)
	}
	sp.Values = make([]float64, n)
	sp.Results = make([]machine.Result, n)
	traces := make([][]trace.Event, n)
	for i, b := range branches {
		sp.Values[i] = b.res.CPT
		sp.Results[i] = b.res
		traces[i] = b.events
	}
	return sp, traces, nil
}
