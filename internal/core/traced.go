package core

import (
	"varsim/internal/digest"
	"varsim/internal/fleet"
	"varsim/internal/machine"
	"varsim/internal/rng"
	"varsim/internal/trace"
)

// BranchTraces is BranchSpace with structured tracing enabled on every
// branched run: n perturbed runs of measureTxns transactions each from
// the checkpoint machine, returning the space plus each run's event
// stream (capEvents per run, 0 = unbounded). Seeds derive exactly as in
// BranchSpace, so run i here reproduces run i there — the traces are
// the Figure-1 view of the same sample space. Like BranchSpace, the
// runs execute on a fleet of workers with an index-ordered merge, so
// both the space and the per-run streams are byte-identical for every
// worker count.
func BranchTraces(checkpoint *machine.Machine, label string, n int, measureTxns int64, seedBase uint64, capEvents, workers int) (Space, [][]trace.Event, error) {
	sp, traces, _, err := BranchObserved(checkpoint, label, n, measureTxns, seedBase, capEvents, workers, 0)
	return sp, traces, err
}

// BranchObserved is BranchTraces with interval state digests riding
// along: every branched run records both its event stream and, when
// digestIntervalNS > 0, a digest sample per interval of simulated
// time. One fleet pass produces the space, the traces, and the digest
// streams — divergence markers land in the same trace they annotate.
// digestIntervalNS <= 0 disables digesting (SpaceDigests comes back
// empty) and makes this exactly BranchTraces.
func BranchObserved(checkpoint *machine.Machine, label string, n int, measureTxns int64, seedBase uint64, capEvents, workers int, digestIntervalNS int64) (Space, [][]trace.Event, SpaceDigests, error) {
	sp := Space{Label: label}
	sd := SpaceDigests{IntervalNS: digestIntervalNS}
	if n <= 0 {
		return sp, nil, sd, nil
	}
	type observed struct {
		res    machine.Result
		events []trace.Event
		dig    digest.Series
	}
	// Freeze before the fleet starts: fleet jobs snapshot the checkpoint
	// concurrently, and Snapshot on a frozen machine performs no writes.
	checkpoint.Freeze()
	branches, err := fleet.Map(fleet.Width(workers), n, func(i int) (observed, error) {
		m := checkpoint.Snapshot()
		m.SetPerturbSeed(rng.Derive(seedBase, 1+uint64(i)))
		m.EnableTrace(capEvents)
		if digestIntervalNS > 0 {
			m.EnableDigests(digestIntervalNS)
		}
		res, err := m.Run(measureTxns)
		if err != nil {
			return observed{}, err
		}
		o := observed{res: res, events: m.Trace().Events()}
		if digestIntervalNS > 0 {
			o.dig = m.DigestSeries()
		}
		return o, nil
	})
	if err != nil {
		return Space{}, nil, SpaceDigests{}, runError(err)
	}
	sp.Values = make([]float64, n)
	sp.Results = make([]machine.Result, n)
	traces := make([][]trace.Event, n)
	if digestIntervalNS > 0 {
		sd.Series = make([]digest.Series, n)
	}
	for i, b := range branches {
		sp.Values[i] = b.res.CPT
		sp.Results[i] = b.res
		traces[i] = b.events
		if digestIntervalNS > 0 {
			sd.Series[i] = b.dig
		}
	}
	return sp, traces, sd, nil
}
