package core

import (
	"fmt"

	"varsim/internal/machine"
	"varsim/internal/rng"
	"varsim/internal/trace"
)

// BranchTraces is BranchSpace with structured tracing enabled on every
// branched run: n perturbed runs of measureTxns transactions each from
// the checkpoint machine, returning the space plus each run's event
// stream (capEvents per run, 0 = unbounded). Seeds derive exactly as in
// BranchSpace, so run i here reproduces run i there — the traces are
// the Figure-1 view of the same sample space.
func BranchTraces(checkpoint *machine.Machine, label string, n int, measureTxns int64, seedBase uint64, capEvents int) (Space, [][]trace.Event, error) {
	sp := Space{Label: label}
	traces := make([][]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		m := checkpoint.Snapshot()
		m.SetPerturbSeed(rng.Derive(seedBase, 1+uint64(i)))
		m.EnableTrace(capEvents)
		res, err := m.Run(measureTxns)
		if err != nil {
			return Space{}, nil, fmt.Errorf("core: traced run %d: %w", i, err)
		}
		sp.Values = append(sp.Values, res.CPT)
		sp.Results = append(sp.Results, res)
		traces = append(traces, m.Trace().Events())
	}
	return sp, traces, nil
}
