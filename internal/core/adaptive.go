// Adaptive scheduling: the round-based drivers behind internal/sampling.
//
// The fixed-N methodology spends Experiment.Runs on every
// configuration. The adaptive drivers here submit runs in rounds
// instead, consulting the sampling package's pure decision procedures
// at a barrier after each round — once the index-ordered merge of the
// round is in hand — and stop, re-budget or prune from there. The
// determinism contract (docs/SAMPLING.md): every executed run keeps
// the exact (experiment, config hash, derived seed, run index)
// identity the fixed-N path would give it, decisions depend only on
// merged values (never completion order), and every decision is
// journaled (journal.StatusDecision) so a -resume replays the same
// stop/prune choices.

package core

import (
	"encoding/json"
	"errors"
	"sync"

	"varsim/internal/fleet"
	"varsim/internal/journal"
	"varsim/internal/machine"
	"varsim/internal/rng"
	"varsim/internal/sampling"
	"varsim/internal/stats"
)

// ObserveOnce returns a copy of the bundle whose Observe hook fires at
// most once per run key. The adaptive drivers wrap their resilience
// with it: under -resume a journaled prefix can overlap an in-flight
// round (a decision record lost to a torn write makes the driver
// resubmit a round whose runs partially replay), and without the guard
// the precision tracker would double-count the overlap — once from the
// cached replay and once from the live completion. Safe for the
// concurrent calls fleet workers make.
func (r Resilience) ObserveOnce() Resilience {
	fn := r.Observe
	if fn == nil {
		return r
	}
	var mu sync.Mutex
	seen := make(map[journal.Key]bool)
	r.Observe = func(k journal.Key, v machine.Result) {
		mu.Lock()
		dup := seen[k]
		seen[k] = true
		mu.Unlock()
		if !dup {
			fn(k, v)
		}
	}
	return r
}

// BranchRound branches run indices [lo, lo+k) of a space from the
// checkpoint — one round of an adaptive schedule. Each run keeps the
// global identity BranchSpaceRes would assign it: the job for global
// index i derives seed rng.Derive(seedBase, 1+i) and journals under
// run key i, so a space assembled round by round is record-for-record
// identical to the same space run fixed-N.
//
// Results come back in index order. On a graceful drain the completed
// subset is returned together with the global indices that never ran
// and the *fleet.Incomplete error.
func BranchRound(checkpoint *machine.Machine, label string, lo, k int, measureTxns int64, seedBase uint64, workers int, res Resilience) ([]machine.Result, []int, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	cfgHash := journal.ConfigHash(checkpoint.Config())
	opts := branchOptions(label, cfgHash, seedBase, workers, res)
	opts.IndexBase = lo
	// Freeze before the fleet starts, as in BranchSpaceRes: jobs
	// snapshot the checkpoint concurrently, which must not write.
	checkpoint.Freeze()
	results, err := fleet.Run(opts, k, func(i int) (machine.Result, error) {
		m := checkpoint.Snapshot()
		m.SetPerturbSeed(rng.Derive(seedBase, 1+uint64(i)))
		return m.Run(measureTxns)
	})
	if err != nil {
		var inc *fleet.Incomplete
		if errors.As(err, &inc) {
			miss := make(map[int]bool, len(inc.Missing))
			for _, gi := range inc.Missing {
				miss[gi] = true
			}
			done := make([]machine.Result, 0, k-len(inc.Missing))
			for j, r := range results {
				if !miss[lo+j] {
					done = append(done, r)
				}
			}
			return done, inc.Missing, err
		}
		return nil, nil, runError(err)
	}
	return results, nil, nil
}

// cachedRound replays run indices [lo, lo+k) wholly from the resume
// cache, mirroring CachedSpace at round granularity: any miss or
// undecodable record returns false (the fleet path then applies
// per-run hits), and the observer is fed only after every record
// decoded, in index order, so a fallthrough cannot double-observe.
func cachedRound(label, cfgHash string, seedBase uint64, lo, k int, res Resilience) ([]machine.Result, bool) {
	if res.Cache == nil {
		return nil, false
	}
	results := make([]machine.Result, k)
	keys := make([]journal.Key, k)
	for j := 0; j < k; j++ {
		keys[j] = branchKey(label, cfgHash, seedBase, lo+j)
		if !res.Cache.Has(keys[j]) {
			return nil, false
		}
		rec, ok := res.Cache.Get(keys[j])
		if !ok {
			return nil, false
		}
		if err := json.Unmarshal(rec.Result, &results[j]); err != nil {
			return nil, false
		}
	}
	if res.Observe != nil {
		for j := range results {
			res.Observe(keys[j], results[j])
		}
	}
	return results, true
}

// Rounds drives one arm of an adaptive schedule: successive Next calls
// execute (or replay) the arm's next k runs, indices [N, N+k). The
// checkpoint is built lazily through Base, so an arm whose rounds
// replay wholly from the journal never pays its warmup — the adaptive
// analogue of CachedSpace's free resume.
type Rounds struct {
	Label       string
	ConfigHash  string
	SeedBase    uint64
	MeasureTxns int64
	Workers     int
	Res         Resilience
	// Base lazily provides the warmed checkpoint machine; it is called
	// at most once, on the first round that needs a live run.
	Base func() (*machine.Machine, error)

	base *machine.Machine
	n    int
}

// N returns how many runs have executed (or replayed) so far.
func (r *Rounds) N() int { return r.n }

// Next runs the arm's next k runs, returning their results in index
// order. On a graceful drain it returns the completed subset, the
// global indices that never ran, and the *fleet.Incomplete error; the
// round is not counted as taken, so a resumed driver resubmits it.
func (r *Rounds) Next(k int) ([]machine.Result, []int, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	if results, ok := cachedRound(r.Label, r.ConfigHash, r.SeedBase, r.n, k, r.Res); ok {
		r.n += k
		return results, nil, nil
	}
	if r.base == nil {
		m, err := r.Base()
		if err != nil {
			return nil, nil, err
		}
		r.base = m
	}
	results, missing, err := BranchRound(r.base, r.Label, r.n, k, r.MeasureTxns, r.SeedBase, r.Workers, r.Res)
	if err != nil {
		return results, missing, err
	}
	r.n += k
	return results, nil, nil
}

// BarrierDecision is the replay-first decision point: if the resume
// cache holds a journaled decision under key, that decision is applied
// verbatim — the -resume contract that an interrupted run's stop and
// prune choices replay exactly. Otherwise compute() derives it from
// the merged values and the result is journaled for the next resume.
func BarrierDecision(res Resilience, key journal.Key, compute func() sampling.Decision) sampling.Decision {
	if rec, ok := res.Cache.Decision(key); ok {
		if d, err := sampling.DecodeDecision(rec); err == nil {
			return d
		}
	}
	d := compute()
	if res.Journal != nil {
		if rec, err := sampling.EncodeDecision(key, d); err == nil {
			// Append errors are sticky on the writer; the CLIs check
			// Writer.Err() at teardown rather than failing runs here.
			//varsim:allow stickyerr fire-and-forget by design: Writer.Err is checked at CLI teardown
			res.Journal.Append(rec)
		}
	}
	return d
}

// AdaptiveSpace runs the experiment under the adaptive stopping rule:
// a MinRuns pilot round, then rounds sized by the §5.1.1 estimate
// until the CI half-width meets the target (or the MaxRuns budget is
// spent). Experiment.Runs is the fixed-N baseline the returned arm's
// runs-saved accounting compares against; the space holds exactly the
// runs executed, each under its fixed-N identity.
func (e Experiment) AdaptiveSpace(t sampling.Target) (Space, sampling.Arm, error) {
	t = t.Normalize()
	arm := sampling.Arm{Experiment: e.Label, FixedN: e.Runs, Status: sampling.StatusIncomplete}
	if err := e.Validate(); err != nil {
		return Space{}, arm, err
	}
	cfgHash := journal.ConfigHash(e.Config)
	arm.ConfigHash = cfgHash
	res := e.Resilience.ObserveOnce()
	rounds := &Rounds{
		Label: e.Label, ConfigHash: cfgHash, SeedBase: e.SeedBase,
		MeasureTxns: e.MeasureTxns, Workers: e.Workers, Res: res,
		Base: e.Prepare,
	}
	sp := Space{Label: e.Label}
	next := t.MinRuns
	for round := 0; ; round++ {
		results, missing, err := rounds.Next(next)
		for _, r := range results {
			sp.Values = append(sp.Values, r.CPT)
			sp.Results = append(sp.Results, r)
		}
		arm.Executed = len(sp.Values)
		if err != nil {
			sp.Missing = missing
			arm.Rounds = round
			publishArm(t, arm)
			return sp, arm, err
		}
		sampling.CountRound(next)
		key := sampling.DecisionKey(e.Label, cfgHash, e.SeedBase, round)
		d := BarrierDecision(res, key, func() sampling.Decision {
			return sampling.Decide(sp.Values, round, t)
		})
		arm.Rounds = round + 1
		arm.RelPct, arm.Needed = d.RelPct, d.Needed
		switch d.Action {
		case sampling.ActionContinue:
			next = d.Next
			publishArm(t, arm)
		case sampling.ActionStop:
			arm.Status = sampling.StatusConverged
			sampling.CountSettle(arm.FixedN-arm.Executed, false)
			publishArm(t, arm)
			return sp, arm, nil
		default: // ActionBudget; Decide never prunes a lone arm
			arm.Status = sampling.StatusBudget
			sampling.CountSettle(arm.FixedN-arm.Executed, false)
			publishArm(t, arm)
			return sp, arm, nil
		}
	}
}

// publishArm refreshes the live sampling surface with a single-arm
// report — observe-only, never an input to a decision.
func publishArm(t sampling.Target, arm sampling.Arm) {
	rep := sampling.Report{Target: t, Arms: []sampling.Arm{arm}}
	rep.Finalize()
	sampling.Publish(rep)
}

// matrixArm is AdaptiveMatrix's per-configuration state.
type matrixArm struct {
	rounds  *Rounds
	sp      Space
	arm     sampling.Arm
	e       Experiment
	res     Resilience
	round   int // barrier decisions taken
	want    int // runs the last decision scheduled (0 once settled)
	settled bool
}

// settle marks the arm terminal with the given status and books the
// runs its fixed-N baseline would still have spent.
func (a *matrixArm) settle(status string) {
	a.settled = true
	a.want = 0
	a.arm.Status = status
	sampling.CountSettle(a.arm.FixedN-a.arm.Executed, status == sampling.StatusPruned)
}

// apply folds one barrier decision into the arm's state.
func (a *matrixArm) apply(d sampling.Decision) {
	a.round = d.Round + 1
	a.arm.Rounds = a.round
	a.arm.RelPct, a.arm.Needed = d.RelPct, d.Needed
	switch d.Action {
	case sampling.ActionContinue:
		a.want = d.Next
	case sampling.ActionStop:
		a.settle(sampling.StatusConverged)
	case sampling.ActionPrune:
		a.settle(sampling.StatusPruned)
	default:
		a.settle(sampling.StatusBudget)
	}
}

// AdaptiveMatrix runs a configuration matrix (one experiment per
// configuration, typically sharing a workload) under a shared run
// budget — the two-phase design: a MinRuns pilot round sizes each
// arm's CoV, then each cycle allocates the remaining budget
// Neyman-style across the arms still in play and prunes every arm
// whose confidence interval has separated from the best arm's. The
// budget is Target.Budget runs in total (default: the sum of the
// arms' fixed-N runs); exhausting it settles the survivors with
// ActionBudget.
//
// Spaces and the report list arms in input order. A graceful drain
// marks the interrupted and unstarted arms incomplete and returns the
// partial spaces with the *fleet.Incomplete error.
func AdaptiveMatrix(es []Experiment, t sampling.Target) ([]Space, sampling.Report, error) {
	t = t.Normalize()
	rep := sampling.Report{Target: t}
	if len(es) == 0 {
		return nil, rep, errors.New("core: adaptive matrix needs at least one experiment")
	}
	arms := make([]*matrixArm, len(es))
	budget := t.Budget
	if budget <= 0 {
		budget = 0
		for _, e := range es {
			budget += e.Runs
		}
	}
	if floor := len(es) * t.MinRuns; budget < floor {
		budget = floor // the pilot phase always completes
	}
	for i, e := range es {
		if err := e.Validate(); err != nil {
			return nil, rep, err
		}
		res := e.Resilience.ObserveOnce()
		cfgHash := journal.ConfigHash(e.Config)
		arms[i] = &matrixArm{
			e: e, res: res, want: t.MinRuns,
			sp:  Space{Label: e.Label},
			arm: sampling.Arm{Experiment: e.Label, ConfigHash: cfgHash, FixedN: e.Runs, Status: sampling.StatusIncomplete},
			rounds: &Rounds{
				Label: e.Label, ConfigHash: cfgHash, SeedBase: e.SeedBase,
				MeasureTxns: e.MeasureTxns, Workers: e.Workers, Res: res,
				Base: e.Prepare,
			},
		}
	}
	executed := 0
	finish := func(incomplete error) ([]Space, sampling.Report, error) {
		spaces := make([]Space, len(arms))
		rep.Arms = make([]sampling.Arm, len(arms))
		for i, a := range arms {
			spaces[i] = a.sp
			rep.Arms[i] = a.arm
		}
		rep.Finalize()
		sampling.Publish(rep)
		return spaces, rep, incomplete
	}
	for {
		// Replay-first: a journaled decision whose N equals the arm's
		// current sample took no runs before it (a prune or a
		// budget-exhaustion settle); apply it before spending budget.
		live := make([]*matrixArm, 0, len(arms))
		for _, a := range arms {
			if a.settled {
				continue
			}
			key := sampling.DecisionKey(a.e.Label, a.arm.ConfigHash, a.e.SeedBase, a.round)
			if rec, ok := a.res.Cache.Decision(key); ok {
				if d, err := sampling.DecodeDecision(rec); err == nil &&
					d.N == len(a.sp.Values) && d.Action != sampling.ActionContinue {
					a.apply(d)
					continue
				}
			}
			live = append(live, a)
		}
		if len(live) == 0 {
			break
		}
		// Allocation: everyone gets what their decision scheduled while
		// the budget lasts; a scarce budget is split Neyman-style.
		remaining := budget - executed
		if remaining <= 0 {
			for _, a := range live {
				key := sampling.DecisionKey(a.e.Label, a.arm.ConfigHash, a.e.SeedBase, a.round)
				d := BarrierDecision(a.res, key, func() sampling.Decision {
					d := sampling.Decide(a.sp.Values, a.round, t)
					if d.Action == sampling.ActionContinue {
						d.Action, d.Next, d.Alloc = sampling.ActionBudget, 0, nil
					}
					return d
				})
				a.apply(d)
			}
			break
		}
		chunks := matrixChunks(live, remaining, t)
		// Run phase: arms run their chunks in input order, each chunk
		// fanned out over the arm's fleet workers.
		var drained error
		for i, a := range live {
			if chunks[i] <= 0 {
				continue
			}
			results, missing, err := a.rounds.Next(chunks[i])
			for _, r := range results {
				a.sp.Values = append(a.sp.Values, r.CPT)
				a.sp.Results = append(a.sp.Results, r)
			}
			a.arm.Executed = len(a.sp.Values)
			executed += len(results)
			if err != nil {
				a.sp.Missing = missing
				drained = err
				break
			}
			sampling.CountRound(chunks[i])
		}
		if drained != nil {
			return finish(drained)
		}
		// Barrier phase: index-ordered decisions over the merged values.
		for i, a := range live {
			if chunks[i] <= 0 || a.settled {
				continue
			}
			key := sampling.DecisionKey(a.e.Label, a.arm.ConfigHash, a.e.SeedBase, a.round)
			round := a.round
			values := a.sp.Values
			d := BarrierDecision(a.res, key, func() sampling.Decision {
				return sampling.Decide(values, round, t)
			})
			a.apply(d)
		}
		// Prune phase: an arm whose CI separated from the best arm's
		// cannot win the comparison; settled arms still anchor the best.
		samples := make([][]float64, len(arms))
		for i, a := range arms {
			samples[i] = a.sp.Values
		}
		flags := sampling.Prune(samples, t.Confidence)
		for i, a := range arms {
			if a.settled || !flags[i] {
				continue
			}
			key := sampling.DecisionKey(a.e.Label, a.arm.ConfigHash, a.e.SeedBase, a.round)
			round := a.round
			values := a.sp.Values
			d := BarrierDecision(a.res, key, func() sampling.Decision {
				d := sampling.Decide(values, round, t)
				d.Action, d.Next, d.Alloc = sampling.ActionPrune, 0, nil
				return d
			})
			a.apply(d)
		}
		// Live surface refresh at the cycle barrier.
		snapshot := sampling.Report{Target: t, Arms: make([]sampling.Arm, len(arms))}
		for i, a := range arms {
			snapshot.Arms[i] = a.arm
		}
		snapshot.Finalize()
		sampling.Publish(snapshot)
	}
	return finish(nil)
}

// matrixChunks sizes each live arm's next round. When the scheduled
// wants fit the remaining budget everyone proceeds as decided; when
// they do not, the remainder is Neyman-allocated by each arm's
// standard deviation (capped at its want), concentrating the last runs
// where the variance lives. At least one run is always assigned so a
// scarce budget still drains to zero deterministically.
func matrixChunks(live []*matrixArm, remaining int, t sampling.Target) []int {
	wants := make([]int, len(live))
	total := 0
	for i, a := range live {
		wants[i] = a.want
		total += a.want
	}
	if total <= remaining {
		return wants
	}
	sds := make([]float64, len(live))
	for i, a := range live {
		sds[i] = stats.StdDev(a.sp.Values)
	}
	chunks := sampling.NeymanAllocate(sds, remaining)
	assigned := 0
	for i := range chunks {
		if chunks[i] > wants[i] {
			chunks[i] = wants[i]
		}
		assigned += chunks[i]
	}
	if assigned == 0 {
		chunks[0] = 1
	}
	return chunks
}
