package core

import (
	"varsim/internal/machine"
	"varsim/internal/metrics"
	"varsim/internal/rng"
)

// RunSampled performs one perturbed measurement run from the
// experiment's warmed checkpoint with interval metric sampling enabled
// (intervalNS of simulated time per sample) and returns the run's
// measurement plus the sampled registry time series — the
// live-instrumentation form of the paper's per-interval figures
// (Figures 2–4): IPC, miss rates and bus utilization derive from the
// series' Delta/Ratio/PerCycle helpers.
func (e Experiment) RunSampled(intervalNS int64) (machine.Result, metrics.TimeSeries, error) {
	base, err := e.Prepare()
	if err != nil {
		return machine.Result{}, metrics.TimeSeries{}, err
	}
	return SampleRun(base, e.MeasureTxns, rng.Derive(e.SeedBase, 1), intervalNS)
}

// SampleRun branches one perturbed run of measureTxns transactions from
// the checkpoint machine with interval sampling every intervalNS.
func SampleRun(checkpoint *machine.Machine, measureTxns int64, perturbSeed uint64, intervalNS int64) (machine.Result, metrics.TimeSeries, error) {
	m := checkpoint.Snapshot()
	m.SetPerturbSeed(perturbSeed)
	m.EnableSampling(intervalNS)
	res, err := m.Run(measureTxns)
	if err != nil {
		return machine.Result{}, metrics.TimeSeries{}, err
	}
	return res, m.MetricSeries(), nil
}
