// Kill-and-resume and retry-determinism integration tests: the
// docs/RESILIENCE.md contract, asserted over rendered report bytes.
// These live in an external test package so they can render through
// internal/report (which imports core) without an import cycle.
package core_test

import (
	"bytes"
	"errors"
	"runtime"
	"testing"

	"varsim/internal/config"
	"varsim/internal/core"
	"varsim/internal/faultinject"
	"varsim/internal/fleet"
	"varsim/internal/journal"
	"varsim/internal/report"
)

// resumeRuns exceeds every tested fleet width (1, 4, NumCPU) by enough
// that a drain fired after two settlements can never be outrun by
// in-flight workers: completed runs are at most StopAfter + width
// < Runs, so the interrupted pass is guaranteed to leave work for the
// resume.
func resumeRuns() int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	return w + 4
}

// resumeExperiment is the fixture for the resume tests.
func resumeExperiment(workers int) core.Experiment {
	cfg := config.Default()
	cfg.NumCPUs = 4
	return core.Experiment{
		Label:        "resume-test",
		Config:       cfg,
		Workload:     "oltp",
		WorkloadSeed: 7,
		WarmupTxns:   20,
		MeasureTxns:  20,
		Runs:         resumeRuns(),
		SeedBase:     0xFEED,
		Workers:      workers,
	}
}

func renderSpace(sp core.Space) []byte {
	var buf bytes.Buffer
	report.WriteSpace(&buf, sp)
	return buf.Bytes()
}

// TestKillAndResumeByteIdentical is the headline resilience test: a run
// drained mid-flight (the in-process stand-in for a SIGKILL — journal
// appends are fsync'd per record, so everything settled is durable even
// though the interrupted writer is never closed) must, after a resume
// from its journal, produce a report byte-identical to an uninterrupted
// sequential run. Verified at fleet widths 1, 4 and NumCPU.
func TestKillAndResumeByteIdentical(t *testing.T) {
	base := resumeExperiment(1)
	sp, err := base.RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	want := renderSpace(sp)

	for _, width := range []int{1, 4, runtime.NumCPU()} {
		t.Run(label(width), func(t *testing.T) {
			dir := t.TempDir()
			jw, err := journal.CreateDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			hook := &faultinject.Hook{StopAfter: 2, Stop: make(chan struct{})}
			e := resumeExperiment(width)
			e.Resilience = core.Resilience{Journal: jw, Stop: hook.Stop, TestHook: hook}
			part, err := e.RunSpace()
			var inc *fleet.Incomplete
			if !errors.As(err, &inc) {
				t.Fatalf("drained run returned %v, want *fleet.Incomplete", err)
			}
			if !part.Incomplete() || len(part.Missing) == 0 {
				t.Fatalf("drained space not marked incomplete: %+v", part)
			}
			if got := renderSpace(part); !bytes.Contains(got, []byte("INCOMPLETE")) {
				t.Fatalf("partial report missing INCOMPLETE banner:\n%s", got)
			}
			if jerr := jw.Err(); jerr != nil {
				t.Fatalf("journal writer failed during drain: %v", jerr)
			}
			// No jw.Close(): a killed process never closes its journal.

			jc, jw2, err := journal.OpenDir(dir, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			if jc.Len() != len(part.Values) {
				t.Fatalf("journal replayed %d records, drained run settled %d", jc.Len(), len(part.Values))
			}
			before := journal.ReadStats().Hits
			r := resumeExperiment(width)
			r.Resilience = core.Resilience{Journal: jw2, Cache: jc}
			full, err := r.RunSpace()
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if cerr := jw2.Close(); cerr != nil {
				t.Fatalf("resume journal close: %v", cerr)
			}
			if hits := journal.ReadStats().Hits - before; hits < int64(jc.Len()) {
				t.Errorf("resume replayed only %d of %d journaled runs", hits, jc.Len())
			}
			if got := renderSpace(full); !bytes.Equal(got, want) {
				t.Errorf("resumed report differs from uninterrupted run at width %d\n got:\n%s\nwant:\n%s",
					width, got, want)
			}
		})
	}
}

// TestResumeFinishedExperimentSkipsWarmup pins the CachedSpace fast
// path: resuming an experiment whose journal covers every run replays
// the whole space — byte-identical — without preparing the machine.
func TestResumeFinishedExperimentSkipsWarmup(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.CreateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := resumeExperiment(4)
	e.Resilience = core.Resilience{Journal: jw}
	sp, err := e.RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	jc, jw2, err := journal.OpenDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	r := resumeExperiment(4)
	r.Resilience = core.Resilience{Journal: jw2, Cache: jc}
	if csp, ok := r.CachedSpace(); !ok {
		t.Fatal("full journal did not satisfy CachedSpace")
	} else if !bytes.Equal(renderSpace(csp), renderSpace(sp)) {
		t.Errorf("cached replay differs from original run\n got:\n%s\nwant:\n%s",
			renderSpace(csp), renderSpace(sp))
	}
	full, err := r.RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderSpace(full), renderSpace(sp)) {
		t.Error("RunSpace via cache differs from original run")
	}
}

// TestRetryDeterminismAcrossSeeds is the retry/seed property test: for
// every seed base in the table, a space whose every run fails its first
// attempt (k=1 < retries) renders byte-identically to a clean first-try
// run — retries re-derive the original seed, they never re-roll it.
func TestRetryDeterminismAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xFEED, 1 << 40, ^uint64(0)} {
		e := resumeExperiment(4)
		e.Runs = 4
		e.SeedBase = seed
		clean, err := e.RunSpace()
		if err != nil {
			t.Fatal(err)
		}

		failEach := map[int]int{}
		for i := 0; i < e.Runs; i++ {
			failEach[i] = 1
		}
		f := e
		f.Resilience = core.Resilience{
			Retries:  2,
			TestHook: &faultinject.Hook{FailTimes: failEach},
		}
		retried, err := f.RunSpace()
		if err != nil {
			t.Fatalf("seed %#x: retried run failed: %v", seed, err)
		}
		if !bytes.Equal(renderSpace(retried), renderSpace(clean)) {
			t.Errorf("seed %#x: retried run differs from clean run\n got:\n%s\nwant:\n%s",
				seed, renderSpace(retried), renderSpace(clean))
		}
	}
}

func label(width int) string {
	switch width {
	case 1:
		return "width-1"
	case 4:
		return "width-4"
	default:
		return "width-numcpu"
	}
}
