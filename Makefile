# Build/test entry points. `make check` is the tier-1 flow: build,
# vet, full tests, plus the race detector over the packages with
# concurrency-sensitive state (the event kernel, the metrics registry
# and its process-wide cycle counter, the heartbeat goroutine, the
# trace buffer, and the live observability server).

GO ?= go

.PHONY: all build test bench vet race check clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o bin/varsim ./cmd/varsim
	$(GO) build -o bin/experiments ./cmd/experiments

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/sim ./internal/metrics ./internal/report ./internal/trace ./internal/obs

check: vet test race
	$(GO) build ./...

clean:
	rm -rf bin
