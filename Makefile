# Build/test entry points. `make check` is the tier-1 flow: build,
# vet, full tests, plus the race detector over the event kernel and the
# metrics registry (the two packages with concurrency-sensitive state —
# the heartbeat goroutine and the process-wide cycle counter ride on
# them).

GO ?= go

.PHONY: all build test bench vet race check clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o bin/varsim ./cmd/varsim
	$(GO) build -o bin/experiments ./cmd/experiments

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/sim ./internal/metrics ./internal/report

check: vet test race
	$(GO) build ./...

clean:
	rm -rf bin
