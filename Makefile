# Build/test entry points. `make check` is the tier-1 flow: build,
# vet, lint, full tests, plus the race detector over the packages with
# concurrency-sensitive state (the event kernel, the metrics registry
# and its process-wide cycle counter, the heartbeat goroutine, the
# trace buffer, and the live observability server). `make lint` runs
# varsimlint, the determinism-contract analyzer suite (detwall,
# seedflow, maporder, kindexhaust) — see docs/DETERMINISM.md.

GO ?= go

.PHONY: all build test bench vet lint race check clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o bin/varsim ./cmd/varsim
	$(GO) build -o bin/experiments ./cmd/experiments
	$(GO) build -o bin/varsimlint ./cmd/varsimlint

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/varsimlint ./...

race:
	$(GO) test -race ./internal/sim ./internal/metrics ./internal/report ./internal/trace ./internal/obs

check: vet lint test race
	$(GO) build ./...

clean:
	rm -rf bin
