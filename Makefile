# Build/test entry points. `make check` is the tier-1 flow: build,
# vet, lint, full tests, plus the race detector over the packages with
# concurrency-sensitive state (the event kernel, the worker-fleet
# scheduler, the metrics registry and its process-wide cycle counter,
# the heartbeat goroutine, the trace buffer, the live observability
# server, the crash-safety layer: the result journal, the fault
# injector and the core resume path above them — the lint call
# graph, whose builder tests run concurrent type-checks — and the
# copy-on-write layers: the machine's frozen-base snapshot path and the
# checkpoint base cache, whose tests branch siblings from shared frozen
# state concurrently — and the adaptive sampler, whose process-wide
# counters and live report are fed from fleet workers). `make lint`
# runs varsimlint, the determinism-contract analyzer suite (detwall,
# puritywall, seedflow, maporder, kindexhaust inside the wall;
# synccheck, stickyerr, floatorder outside it; staleallow auditing the
# suppressions themselves) against the checked-in lint.baseline.json —
# see docs/DETERMINISM.md. `make lint-sarif` writes the same run as
# SARIF 2.1.0 to lint.sarif for CI upload and code-scanning ingestion.
# `make bench-json` records the fleet scheduler's
# sequential-vs-parallel cost to BENCH_parallel.json. `make fuzz-smoke`
# runs each native fuzz target briefly over its committed corpus — the
# CI smoke of the journal codec and stats input contracts
# (docs/RESILIENCE.md).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test bench bench-json bench-digest bench-snapshot bench-sampling vet lint lint-sarif lint-baseline race fuzz-smoke check clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o bin/varsim ./cmd/varsim
	$(GO) build -o bin/experiments ./cmd/experiments
	$(GO) build -o bin/varsimlint ./cmd/varsimlint

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# One iteration per benchmark: a smoke-speed record of the parallel
# fleet's cost (sequential vs -j 4 BranchSpace, snapshot cost, registry
# snapshot), written as JSON for diffing across commits.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_parallel.json

# Paired digest-overhead record: identical measurement windows with
# interval state digests off vs on, five repeats folded to min ns/op
# to sink host noise, written with the computed digest_overhead_pct
# (acceptance: under 5%).
bench-digest:
	$(GO) run ./cmd/benchjson -bench 'RunDigests' -benchtime 10x -count 5 -out BENCH_digest.json

# Copy-on-write snapshot record: the COW/deep snapshot pair plus the
# branch-then-touch pair (write-fault tax), five repeats folded to min
# ns/op, with the computed snapshot_speedup / snapshot_bytes_ratio
# (acceptance: >=5x and >=10x vs the materialized deep clone).
bench-snapshot:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkSnapshot$$|BenchmarkSnapshotDeep$$|BranchThenTouch' -benchtime 10x -count 5 -out BENCH_snapshot.json

# Adaptive-sampling record: the Table-3-shaped matrix scheduled by the
# paper's §5.1.1 target (±4% at 95%) against a 20-run fixed-N baseline,
# with the computed runs_saved_pct (acceptance: >= 66.7%, i.e. at
# least 3x fewer runs than fixed-N) — see docs/SAMPLING.md.
bench-sampling:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkAdaptiveTable3$$' -benchtime 1x -count 3 -out BENCH_sampling.json

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/varsimlint -baseline lint.baseline.json ./...

# SARIF artifact for CI upload / GitHub code scanning.
lint-sarif:
	$(GO) run ./cmd/varsimlint -baseline lint.baseline.json -format sarif -o lint.sarif ./...

# Regenerate the accepted-findings baseline (review the diff before
# committing: every new entry is accepted debt).
lint-baseline:
	$(GO) run ./cmd/varsimlint -baseline lint.baseline.json -write-baseline ./...

race:
	$(GO) test -race ./internal/fleet ./internal/sim ./internal/metrics ./internal/report ./internal/trace ./internal/obs ./internal/journal ./internal/faultinject ./internal/core ./internal/precision ./internal/lint/callgraph ./internal/machine ./internal/checkpoint ./internal/sampling

# Go's fuzzer accepts one target per invocation; each run seeds from the
# committed corpus under the package's testdata/fuzz and then mutates
# for FUZZTIME.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzRecordCodec$$' -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run='^$$' -fuzz='^FuzzDigestCodec$$' -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run='^$$' -fuzz='^FuzzCI$$' -fuzztime=$(FUZZTIME) ./internal/stats
	$(GO) test -run='^$$' -fuzz='^FuzzANOVA$$' -fuzztime=$(FUZZTIME) ./internal/stats
	$(GO) test -run='^$$' -fuzz='^FuzzStream$$' -fuzztime=$(FUZZTIME) ./internal/stats
	$(GO) test -run='^$$' -fuzz='^FuzzDecisionCodec$$' -fuzztime=$(FUZZTIME) ./internal/sampling

check: vet lint test race
	$(GO) build ./...

clean:
	rm -rf bin
