package varsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCPUs = 4
	wl, err := NewWorkload("oltp", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, wl, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(20); err != nil {
		t.Fatal(err)
	}
	sp, err := BranchSpace(m, "demo", 4, 15, 99, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(sp.Values)
	if s.N != 4 || s.Mean <= 0 {
		t.Fatalf("bad space summary %+v", s)
	}
}

func TestFacadeStatistics(t *testing.T) {
	a := []float64{10, 11, 10.5, 10.2, 10.8}
	b := []float64{9, 9.2, 8.8, 9.1, 9.05}
	if WCR(a, b) != 0 {
		t.Error("disjoint samples should have zero WCR")
	}
	ci, err := CI(a, 0.95)
	if err != nil || ci.Lo >= ci.Hi {
		t.Fatalf("bad CI %+v %v", ci, err)
	}
	tt, err := TTestOneSided(a, b)
	if err != nil || !tt.Reject(0.01) {
		t.Fatalf("clear difference not significant: %+v %v", tt, err)
	}
	an, err := OneWayANOVA([][]float64{a, b})
	if err != nil || !an.Significant(0.01) {
		t.Fatalf("ANOVA missed group difference: %+v %v", an, err)
	}
	if n := SampleSizeRelErr(0.09, 0.04, 0.95); n < 19 || n > 21 {
		t.Errorf("paper's sizing example gives %d", n)
	}
}

func TestFacadeExperiment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCPUs = 4
	e := Experiment{
		Label: "x", Config: cfg, Workload: "oltp", WorkloadSeed: 2,
		WarmupTxns: 15, MeasureTxns: 15, Runs: 3, SeedBase: 5,
	}
	sp, err := e.RunSpace()
	if err != nil {
		t.Fatal(err)
	}
	sp2 := sp
	sp2.Label = "y"
	cmp, err := Compare(sp, sp2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MeanDiffPct != 0 {
		t.Errorf("identical spaces differ: %+v", cmp)
	}
}

func TestWorkloadsListed(t *testing.T) {
	if len(Workloads()) != 7 {
		t.Fatalf("want 7 workloads, got %v", Workloads())
	}
	if DefaultTxns("oltp") != 1000 {
		t.Error("Table 3 OLTP txn count wrong")
	}
}

func TestPaperExperimentsRegistry(t *testing.T) {
	names := PaperExperiments()
	if len(names) != 19 {
		t.Fatalf("want 19 experiments, got %d: %v", len(names), names)
	}
	for _, want := range []string{"fig1", "table1", "table5", "anova", "sampling"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %s missing", want)
		}
	}
	if err := RunPaperExperiment("nosuch", &bytes.Buffer{}, 1, true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunPaperExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunPaperExperiment("fig4", &buf, 1, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DRAM latency") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
